//! K-way merged scans across the in-memory component(s) and on-disk
//! components, with newest-wins semantics and anti-matter annihilation
//! (paper §2.2, Fig 4b).
//!
//! A [`MergedScan`] *owns* its inputs: memtable contents are snapshotted at
//! construction and disk components are retained via `Arc`. Once built, the
//! scan is independent of the tree's locks — concurrent flushes and merges
//! may replace the component list without invalidating an in-flight scan,
//! which simply keeps reading its consistent snapshot.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use tc_storage::error::StorageError;
use tc_storage::BufferCache;

use crate::component::{ComponentId, ComponentScan, DiskComponent};
use crate::entry::{EntryKind, Key};
use crate::memtable::{MemEntry, Memtable};

/// Degradation record for a merged scan: the components that could not be
/// read — already quarantined at scan start, or quarantined mid-scan when a
/// page checksum failed — together with the error each one produced.
///
/// A scan with non-empty health still terminates normally, but its results
/// cover only the healthy sources; the query layer decides (per its
/// corruption policy) whether to surface partial results or fail the query
/// with the first recorded error.
#[derive(Debug, Default)]
pub struct ScanHealth {
    degraded: Vec<(ComponentId, StorageError)>,
}

impl ScanHealth {
    pub fn is_clean(&self) -> bool {
        self.degraded.is_empty()
    }

    /// Components dropped from the scan, oldest first.
    pub fn degraded(&self) -> &[(ComponentId, StorageError)] {
        &self.degraded
    }

    /// The first error encountered (what a fail-policy query reports).
    pub fn first_error(&self) -> Option<&StorageError> {
        self.degraded.first().map(|(_, e)| e)
    }

    /// Fold another health record into this one (cross-partition queries).
    pub fn absorb(&mut self, other: ScanHealth) {
        self.degraded.extend(other.degraded);
    }
}

/// Copy a memtable's entries from `start` onward into an owned snapshot
/// (the cheap, in-memory part of scan construction — safe under a lock).
pub fn snapshot_memtable(mem: &Memtable, start: Option<&[u8]>) -> Vec<(Key, EntryKind, Vec<u8>)> {
    mem.range(
        match start {
            Some(s) => std::ops::Bound::Included(s),
            None => std::ops::Bound::Unbounded,
        },
        std::ops::Bound::Unbounded,
    )
    .map(|(k, e)| match e {
        MemEntry::Record(p) => (k.clone(), EntryKind::Record, p.clone()),
        MemEntry::AntiMatter(_) => (k.clone(), EntryKind::AntiMatter, Vec::new()),
    })
    .collect()
}

/// Assemble a live-records scan from parts captured under a tree read view:
/// the retained frozen memtable (snapshotted here, outside the lock), the
/// already-copied active snapshot, and the retained components. Encodes the
/// ordering invariant in ONE place: frozen ranks above every component and
/// below the active memtable.
pub fn scan_from_tree_parts(
    frozen: Option<&Memtable>,
    active_snapshot: Vec<(Key, EntryKind, Vec<u8>)>,
    components: &[Arc<DiskComponent>],
    cache: &Arc<BufferCache>,
    start: Option<&[u8]>,
    end: Option<&[u8]>,
) -> MergedScan {
    let mut mems = Vec::with_capacity(2);
    if let Some(frozen) = frozen {
        mems.push(snapshot_memtable(frozen, start));
    }
    mems.push(active_snapshot);
    MergedScan::from_parts(mems, components, cache, start, end, false)
}

/// One input to the merge. Rank encodes recency: higher = newer; memtables
/// are always newer than every disk component.
enum SourceIter {
    Mem(std::vec::IntoIter<(Key, EntryKind, Vec<u8>)>),
    Disk(ComponentScan),
}

struct HeapItem {
    key: Key,
    kind: EntryKind,
    payload: Vec<u8>,
    rank: usize,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.rank == other.rank
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert key order (smallest first), break
        // ties by rank (newest first).
        other.key.cmp(&self.key).then_with(|| self.rank.cmp(&other.rank))
    }
}

/// Merged iterator over an LSM tree's sources (self-contained snapshot).
pub struct MergedScan {
    heap: BinaryHeap<HeapItem>,
    sources: Vec<SourceIter>,
    /// Emit anti-matter entries (used by merge); reads skip them.
    include_antimatter: bool,
    /// Exclusive upper bound.
    end: Option<Key>,
    /// Components dropped because they were (or became) corrupt.
    health: ScanHealth,
}

impl MergedScan {
    /// Build a scan. `components` are ordered oldest → newest; `mems` (if
    /// any) are ordered oldest → newest too and are newer than every
    /// component — with a background flush in flight this is `[frozen,
    /// active]`. `start` is inclusive, `end` exclusive.
    pub fn new(
        mems: &[&Memtable],
        components: &[Arc<DiskComponent>],
        cache: &Arc<BufferCache>,
        start: Option<&[u8]>,
        end: Option<&[u8]>,
        include_antimatter: bool,
    ) -> Self {
        let snapshots = mems.iter().map(|m| snapshot_memtable(m, start)).collect();
        Self::from_parts(snapshots, components, cache, start, end, include_antimatter)
    }

    /// Build a scan from pre-captured memtable snapshots (oldest → newest,
    /// newer than every component). This is the constructor for callers
    /// that snapshot under a lock: heap priming reads (and possibly
    /// decompresses) one block per overlapping component, so it must run
    /// *after* any tree lock is released — only the cheap
    /// [`snapshot_memtable`] copies belong inside the critical section.
    pub fn from_parts(
        mem_snapshots: Vec<Vec<(Key, EntryKind, Vec<u8>)>>,
        components: &[Arc<DiskComponent>],
        cache: &Arc<BufferCache>,
        start: Option<&[u8]>,
        end: Option<&[u8]>,
        include_antimatter: bool,
    ) -> Self {
        let mut sources: Vec<SourceIter> =
            Vec::with_capacity(components.len() + mem_snapshots.len());
        let mut health = ScanHealth::default();
        for c in components {
            // Key-range filter: skip components outside [start, end).
            if !c.overlaps(start, end) {
                continue;
            }
            // A component already known corrupt is excluded up front; the
            // query layer sees it in the scan's health record.
            if c.is_quarantined() {
                health.degraded.push((
                    c.id(),
                    StorageError::corruption(
                        "component",
                        format!("component {} is quarantined", c.id()),
                    ),
                ));
                continue;
            }
            sources.push(SourceIter::Disk(c.scan(cache, start)));
        }
        for snapshot in mem_snapshots {
            sources.push(SourceIter::Mem(snapshot.into_iter()));
        }
        let mut scan = MergedScan {
            heap: BinaryHeap::with_capacity(sources.len()),
            sources,
            include_antimatter,
            end: end.map(|e| e.to_vec()),
            health,
        };
        for rank in 0..scan.sources.len() {
            scan.advance(rank);
        }
        scan
    }

    fn advance(&mut self, rank: usize) {
        match &mut self.sources[rank] {
            SourceIter::Mem(it) => {
                if let Some((key, kind, payload)) = it.next() {
                    self.heap.push(HeapItem { key, kind, payload, rank });
                }
            }
            SourceIter::Disk(scan) => match scan.next() {
                Some(Ok((key, kind, payload))) => {
                    self.heap.push(HeapItem { key, kind, payload, rank });
                }
                Some(Err(e)) => {
                    // The component went corrupt mid-scan: it is quarantined
                    // (ComponentScan did that), the source yields nothing
                    // further, and the degradation is recorded for the query
                    // layer's policy decision.
                    self.health.degraded.push((scan.component().id(), e));
                }
                None => {}
            },
        }
    }

    /// Degradation record: which components this scan had to drop.
    pub fn health(&self) -> &ScanHealth {
        &self.health
    }

    /// Take ownership of the health record (for absorbing into an
    /// aggregated, cross-partition report).
    pub fn take_health(&mut self) -> ScanHealth {
        std::mem::take(&mut self.health)
    }

    /// Next live entry: `(key, kind, payload)`. With
    /// `include_antimatter == false`, deleted keys are invisible.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(Key, EntryKind, Vec<u8>)> {
        loop {
            let top = self.heap.pop()?;
            if let Some(end) = &self.end {
                if top.key.as_slice() >= end.as_slice() {
                    return None;
                }
            }
            self.advance(top.rank);
            // Drop older duplicates of the same key.
            while let Some(next) = self.heap.peek() {
                if next.key == top.key {
                    let dup = self.heap.pop().expect("peeked");
                    self.advance(dup.rank);
                } else {
                    break;
                }
            }
            match top.kind {
                EntryKind::AntiMatter if !self.include_antimatter => continue,
                _ => return Some((top.key, top.kind, top.payload)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{ComponentBuilder, ComponentId};
    use std::sync::Arc;
    use tc_compress::CompressionScheme;
    use tc_storage::device::{Device, DeviceProfile};

    fn component(seq: u64, entries: &[(u64, EntryKind, &str)]) -> Arc<DiskComponent> {
        let device = Arc::new(Device::new(DeviceProfile::RAM));
        let mut b = ComponentBuilder::new(device, 256, CompressionScheme::None, entries.len(), 10);
        for (k, kind, v) in entries {
            b.push(&k.to_be_bytes(), *kind, v.as_bytes()).unwrap();
        }
        Arc::new(b.finish(ComponentId::flushed(seq), None, true).unwrap())
    }

    fn collect(scan: &mut MergedScan) -> Vec<(u64, EntryKind, String)> {
        let mut out = Vec::new();
        while let Some((k, kind, p)) = scan.next() {
            out.push((
                u64::from_be_bytes(k[..8].try_into().unwrap()),
                kind,
                String::from_utf8(p).unwrap(),
            ));
        }
        out
    }

    #[test]
    fn newest_component_wins_per_key() {
        use EntryKind::*;
        let c0 = component(0, &[(1, Record, "old1"), (2, Record, "old2"), (3, Record, "old3")]);
        let c1 = component(1, &[(2, Record, "new2")]);
        let comps = vec![c0, c1];
        let cache = Arc::new(BufferCache::new(16));
        let mut scan = MergedScan::new(&[], &comps, &cache, None, None, false);
        assert_eq!(
            collect(&mut scan),
            vec![
                (1, Record, "old1".into()),
                (2, Record, "new2".into()),
                (3, Record, "old3".into())
            ]
        );
    }

    #[test]
    fn paper_fig4_antimatter_annihilation() {
        use EntryKind::*;
        // C0: records 0 ("Kim") and 1 ("John"); C1: anti-matter for 0 and
        // record 2 ("Bob"). A read sees John and Bob only (Fig 4).
        let c0 = component(0, &[(0, Record, "Kim"), (1, Record, "John")]);
        let c1 = component(1, &[(0, AntiMatter, ""), (2, Record, "Bob")]);
        let comps = vec![c0, c1];
        let cache = Arc::new(BufferCache::new(16));
        let mut scan = MergedScan::new(&[], &comps, &cache, None, None, false);
        assert_eq!(collect(&mut scan), vec![(1, Record, "John".into()), (2, Record, "Bob".into())]);
        // A merge-mode scan still sees the anti-matter entry.
        let mut scan = MergedScan::new(&[], &comps, &cache, None, None, true);
        let all = collect(&mut scan);
        assert_eq!(all.len(), 3);
        assert_eq!(all[0], (0, AntiMatter, "".into()));
    }

    #[test]
    fn memtable_overrides_disk() {
        use EntryKind::*;
        let c0 = component(0, &[(1, Record, "disk"), (2, Record, "stays")]);
        let comps = vec![c0];
        let mut mem = Memtable::new();
        mem.put(1u64.to_be_bytes().to_vec(), MemEntry::Record(b"mem".to_vec()));
        mem.put(3u64.to_be_bytes().to_vec(), MemEntry::AntiMatter(None));
        let cache = Arc::new(BufferCache::new(16));
        let mut scan = MergedScan::new(&[&mem], &comps, &cache, None, None, false);
        assert_eq!(
            collect(&mut scan),
            vec![(1, Record, "mem".into()), (2, Record, "stays".into())]
        );
    }

    #[test]
    fn frozen_memtable_ranks_between_disk_and_active() {
        use EntryKind::*;
        // Disk has k=1 "disk"; the frozen (mid-flush) memtable overwrote it
        // with "frozen"; the active memtable overwrote that with "active".
        // The scan must pick the active version; with the active one absent,
        // the frozen one must beat the disk one.
        let c0 = component(0, &[(1, Record, "disk"), (2, Record, "disk2")]);
        let comps = vec![c0];
        let mut frozen = Memtable::new();
        frozen.put(1u64.to_be_bytes().to_vec(), MemEntry::Record(b"frozen".to_vec()));
        frozen.put(2u64.to_be_bytes().to_vec(), MemEntry::Record(b"frozen2".to_vec()));
        let mut active = Memtable::new();
        active.put(1u64.to_be_bytes().to_vec(), MemEntry::Record(b"active".to_vec()));
        let cache = Arc::new(BufferCache::new(16));
        let mut scan = MergedScan::new(&[&frozen, &active], &comps, &cache, None, None, false);
        assert_eq!(
            collect(&mut scan),
            vec![(1, Record, "active".into()), (2, Record, "frozen2".into())]
        );
    }

    #[test]
    fn scan_survives_component_list_replacement() {
        use EntryKind::*;
        // Snapshot semantics: dropping the caller's Arcs (as a concurrent
        // merge would) must not invalidate a running scan.
        let c0 = component(0, &[(1, Record, "a"), (2, Record, "b"), (3, Record, "c")]);
        let cache = Arc::new(BufferCache::new(16));
        let mut comps = vec![c0];
        let mut scan = MergedScan::new(&[], &comps, &cache, None, None, false);
        assert_eq!(scan.next().unwrap().0, 1u64.to_be_bytes().to_vec());
        comps.clear(); // the tree swapped its list; the scan holds its own Arc
        assert_eq!(scan.next().unwrap().0, 2u64.to_be_bytes().to_vec());
        assert_eq!(scan.next().unwrap().0, 3u64.to_be_bytes().to_vec());
        assert!(scan.next().is_none());
    }

    #[test]
    fn range_bounds_are_respected() {
        use EntryKind::*;
        let entries: Vec<(u64, EntryKind, &str)> = (0..20).map(|i| (i, Record, "v")).collect();
        let c0 = component(0, &entries);
        let comps = vec![c0];
        let cache = Arc::new(BufferCache::new(16));
        let start = 5u64.to_be_bytes();
        let end = 9u64.to_be_bytes();
        let mut scan = MergedScan::new(&[], &comps, &cache, Some(&start), Some(&end), false);
        let got: Vec<u64> = collect(&mut scan).into_iter().map(|(k, _, _)| k).collect();
        assert_eq!(got, vec![5, 6, 7, 8]);
    }

    #[test]
    fn range_scan_skips_non_overlapping_components() {
        use EntryKind::*;
        // Old component holds keys 0..10; new holds 100..110. A range scan
        // over [100, 105) must not touch the old component's pages.
        let c_old = component(0, &(0..10).map(|i| (i, Record, "old")).collect::<Vec<_>>());
        let c_new = component(1, &(100..110).map(|i| (i, Record, "new")).collect::<Vec<_>>());
        let comps = vec![c_old, c_new];
        let cache = Arc::new(BufferCache::new(16));
        let start = 100u64.to_be_bytes();
        let end = 105u64.to_be_bytes();
        let misses_before = cache.misses();
        let mut scan = MergedScan::new(&[], &comps, &cache, Some(&start), Some(&end), false);
        let got: Vec<u64> = collect(&mut scan).into_iter().map(|(k, _, _)| k).collect();
        assert_eq!(got, vec![100, 101, 102, 103, 104]);
        // Only the new component's block was fetched.
        assert_eq!(cache.misses() - misses_before, 1);
    }

    #[test]
    fn quarantined_component_is_skipped_and_reported() {
        use EntryKind::*;
        let c0 = component(0, &[(1, Record, "a")]);
        let c1 = component(1, &[(2, Record, "b")]);
        c0.quarantine();
        let comps = vec![c0, c1];
        let cache = Arc::new(BufferCache::new(16));
        let mut scan = MergedScan::new(&[], &comps, &cache, None, None, false);
        assert_eq!(collect(&mut scan), vec![(2, Record, "b".into())]);
        assert!(!scan.health().is_clean());
        assert_eq!(scan.health().degraded().len(), 1);
        assert_eq!(scan.health().degraded()[0].0, ComponentId::flushed(0));
        let health = scan.take_health();
        assert!(health.first_error().unwrap().is_corruption());
        assert!(scan.health().is_clean(), "take_health leaves a clean record");
    }

    #[test]
    fn mid_scan_corruption_degrades_without_panicking() {
        use tc_storage::fault::FaultPlan;
        use EntryKind::*;
        // Build one healthy component and one whose later pages are rotten.
        let healthy = component(1, &[(1000, Record, "ok1"), (1001, Record, "ok2")]);
        let device = Arc::new(Device::new(DeviceProfile::RAM));
        device.set_fault_plan(FaultPlan::new(21).flip_bit_in_nth_write(4));
        let mut b = ComponentBuilder::new(Arc::clone(&device), 64, CompressionScheme::None, 64, 10);
        for i in 0..64u64 {
            b.push(&i.to_be_bytes(), Record, b"payload").unwrap();
        }
        let rotten = Arc::new(b.finish(ComponentId::flushed(0), None, true).unwrap());
        device.clear_fault_plan();
        let comps = vec![rotten.clone(), healthy];
        let cache = Arc::new(BufferCache::new(32));
        let mut scan = MergedScan::new(&[], &comps, &cache, None, None, false);
        let got = collect(&mut scan);
        // The healthy component's rows always survive; the rotten one
        // contributes only entries before the damage.
        assert!(got.iter().any(|(k, _, _)| *k == 1000));
        assert!(got.iter().any(|(k, _, _)| *k == 1001));
        assert!(got.len() < 2 + 64, "rows after the corrupt page must be gone");
        assert!(!scan.health().is_clean());
        assert_eq!(scan.health().degraded()[0].0, ComponentId::flushed(0));
        assert!(rotten.is_quarantined());
    }

    #[test]
    fn re_insert_after_delete_is_visible() {
        use EntryKind::*;
        let c0 = component(0, &[(7, Record, "v1")]);
        let c1 = component(1, &[(7, AntiMatter, "")]);
        let c2 = component(2, &[(7, Record, "v2")]);
        let comps = vec![c0, c1, c2];
        let cache = Arc::new(BufferCache::new(16));
        let mut scan = MergedScan::new(&[], &comps, &cache, None, None, false);
        assert_eq!(collect(&mut scan), vec![(7, Record, "v2".into())]);
    }
}
