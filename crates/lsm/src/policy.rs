//! Merge policies (paper §2.2, [19, 29]) and the compaction design space.
//!
//! The paper's ingestion experiments use AsterixDB's default *prefix* merge
//! policy with a maximum mergeable component size and a maximum tolerable
//! component count (§4.3: 1 GB / 5 components). Following "Constructing and
//! Analyzing the LSM Compaction Design Space" (PAPERS.md), the policy is a
//! real design space here, not a hardcoded strategy:
//!
//! * [`MergePolicy`] is the *spellable configuration* — a small `Copy` enum
//!   that lives in `LsmOptions` / `DatasetConfig` and names a policy plus
//!   its knobs.
//! * [`CompactionPolicy`] is the *mechanism* — a trait whose `decide` maps
//!   the current on-disk run list (as cheap [`RunMeta`] summaries, oldest →
//!   newest) to a [`CompactionDecision`]: do nothing, merge a pick of runs,
//!   or retire an oldest prefix (FIFO/TTL).
//! * [`MergePolicy::build`] resolves configuration → mechanism, and the
//!   name registry ([`MergePolicy::by_name`] / [`MergePolicy::matrix`])
//!   makes the whole space selectable from a bench flag or iterable by a
//!   test harness.
//!
//! Decisions are pure functions of the run list: same input, same pick
//! (the policy-matrix tests rely on this determinism). Picks are index
//! lists, not ranges — the tree accepts non-contiguous picks and validates
//! the key-disjointness condition that makes them sound (see
//! `LsmTree::merge_indices`). Every shipped policy emits contiguous picks.

use std::sync::Arc;

use crate::component::DiskComponent;

/// Cheap per-run summary a policy decides over. Built from the component
/// list on every scheduling round; tests construct these directly instead
/// of building real components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunMeta {
    /// On-disk footprint in bytes (data + index + filter pages).
    pub bytes: u64,
    /// Total entries, anti-matter included.
    pub entries: u64,
}

impl RunMeta {
    pub fn new(bytes: u64, entries: u64) -> Self {
        RunMeta { bytes, entries }
    }

    pub fn of(c: &DiskComponent) -> Self {
        RunMeta { bytes: c.disk_bytes(), entries: c.num_entries() }
    }
}

/// Why a merge fired — indexes the `merges_by_trigger` stats array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeTrigger {
    /// Too many mergeable components accumulated (prefix/constant, and the
    /// leveled L0 rule).
    ComponentCount = 0,
    /// A run grew into its older neighbor's size class (leveled invariant:
    /// one run per level).
    LevelOverflow = 1,
    /// A size tier filled up to its run quota (tiered, and the lazy-leveled
    /// L0 rule).
    TierFull = 2,
    /// Explicitly requested (`force_full_merge` / `merge`).
    Manual = 3,
}

/// Number of [`MergeTrigger`] variants (length of `merges_by_trigger`).
pub const NUM_MERGE_TRIGGERS: usize = 4;

impl MergeTrigger {
    pub const ALL: [MergeTrigger; NUM_MERGE_TRIGGERS] = [
        MergeTrigger::ComponentCount,
        MergeTrigger::LevelOverflow,
        MergeTrigger::TierFull,
        MergeTrigger::Manual,
    ];

    pub fn label(self) -> &'static str {
        match self {
            MergeTrigger::ComponentCount => "component_count",
            MergeTrigger::LevelOverflow => "level_overflow",
            MergeTrigger::TierFull => "tier_full",
            MergeTrigger::Manual => "manual",
        }
    }
}

/// A set of runs to merge: strictly ascending indices (oldest → newest)
/// into the run list the policy decided over, with at least two entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergePick {
    pub indices: Vec<usize>,
    pub trigger: MergeTrigger,
}

impl MergePick {
    pub fn contiguous(range: std::ops::Range<usize>, trigger: MergeTrigger) -> Self {
        MergePick { indices: range.collect(), trigger }
    }

    /// True when the indices form `0..k` — only then may a merge drop
    /// anti-matter (nothing older survives to be resurrected).
    pub fn includes_oldest(&self) -> bool {
        self.is_contiguous() && self.indices.first() == Some(&0)
    }

    pub fn is_contiguous(&self) -> bool {
        self.indices.windows(2).all(|w| w[1] == w[0] + 1)
    }
}

/// What the policy wants done to the current run list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompactionDecision {
    /// Nothing to do.
    None,
    /// Merge the picked runs into one.
    Merge(MergePick),
    /// Drop the oldest `n` runs without reading them (FIFO/TTL). Only an
    /// oldest *prefix* may be retired: dropping a middle run could let
    /// surviving anti-matter annihilate nothing while older record
    /// versions resurrect.
    Retire(usize),
}

/// The compaction mechanism: a pure scheduling function over run
/// summaries. Implementations must be deterministic — the tree re-invokes
/// `decide` until it returns [`CompactionDecision::None`].
pub trait CompactionPolicy: Send + Sync + std::fmt::Debug {
    fn name(&self) -> &'static str;

    /// Decide over `runs` (oldest → newest). A returned merge pick must
    /// have ≥ 2 strictly ascending in-bounds indices; a retire count must
    /// be ≥ 1 and ≤ `runs.len()`.
    fn decide(&self, runs: &[RunMeta]) -> CompactionDecision;

    /// Level assignment per run (for the per-level component-count stats).
    /// Policies without a level structure put everything at level 0.
    fn levels(&self, runs: &[RunMeta]) -> Vec<u32> {
        vec![0; runs.len()]
    }
}

/// When and what to merge — the spellable configuration side of the
/// design space. `build` resolves it to a [`CompactionPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergePolicy {
    /// Merge the run of newest components, each smaller than
    /// `max_mergeable_size`, once more than `max_tolerable_components` of
    /// them accumulate (AsterixDB's default, paper §4.3).
    Prefix { max_mergeable_size: u64, max_tolerable_components: usize },
    /// Merge everything whenever more than `max_components` exist — except
    /// an oldest prefix of components that each outweigh everything newer
    /// combined (rewriting a dominating giant for no count benefit is
    /// quadratic-in-bytes work; see `constant_policy_caps_oversized`).
    Constant { max_components: usize },
    /// Never merge (bulk-load / ablation).
    NoMerge,
    /// Size-ratio levels with one run per level below L0: flushed runs
    /// collect in level 0 (≤ `base_bytes`); more than `level0_components`
    /// of them merge down into the adjacent older run, and a run that
    /// grows into its older neighbor's size class merges with it.
    Leveled { level0_components: usize, base_bytes: u64, fanout: u64 },
    /// Size-tiered runs: contiguous runs of the same size class (classes
    /// grow by `size_ratio` from `base_bytes`) merge once `min_tier_runs`
    /// of them accumulate, newest tier first.
    Tiered { base_bytes: u64, size_ratio: u64, min_tier_runs: usize },
    /// Lazy leveling: tiered at L0 (merge the newest suffix of base-class
    /// runs once `tier_runs` accumulate), leveled below (one run per
    /// level).
    LazyLeveled { tier_runs: usize, base_bytes: u64, fanout: u64 },
    /// FIFO/TTL: never merge; retire the oldest runs once more than
    /// `max_components` runs or `max_total_bytes` bytes accumulate.
    /// Deliberately lossy — retired data is gone.
    Fifo { max_components: usize, max_total_bytes: u64 },
}

impl MergePolicy {
    /// The paper's feed-ingestion configuration, scaled: 1 GB max mergeable,
    /// 5 tolerable components (§4.3).
    pub fn paper_default(max_mergeable_size: u64) -> Self {
        MergePolicy::Prefix { max_mergeable_size, max_tolerable_components: 5 }
    }

    /// Registry name (also what `by_name` accepts).
    pub fn name(&self) -> &'static str {
        match self {
            MergePolicy::Prefix { .. } => "prefix",
            MergePolicy::Constant { .. } => "constant",
            MergePolicy::NoMerge => "nomerge",
            MergePolicy::Leveled { .. } => "leveled",
            MergePolicy::Tiered { .. } => "tiered",
            MergePolicy::LazyLeveled { .. } => "lazy-leveled",
            MergePolicy::Fifo { .. } => "fifo",
        }
    }

    /// Look a policy up by registry name with bench-scale default knobs.
    /// The FIFO entry's caps are unreachable — selecting it via the
    /// registry gets TTL *semantics* without silently dropping data; set
    /// real caps explicitly when loss is intended.
    pub fn by_name(name: &str) -> Option<MergePolicy> {
        const BASE: u64 = 256 * 1024;
        Some(match name {
            "prefix" => MergePolicy::Prefix {
                max_mergeable_size: 32 * 1024 * 1024,
                max_tolerable_components: 5,
            },
            "constant" => MergePolicy::Constant { max_components: 5 },
            "nomerge" => MergePolicy::NoMerge,
            "leveled" => MergePolicy::Leveled { level0_components: 4, base_bytes: BASE, fanout: 4 },
            "tiered" => MergePolicy::Tiered { base_bytes: BASE, size_ratio: 4, min_tier_runs: 4 },
            "lazy-leveled" => {
                MergePolicy::LazyLeveled { tier_runs: 4, base_bytes: BASE, fanout: 4 }
            }
            "fifo" => MergePolicy::Fifo { max_components: usize::MAX, max_total_bytes: u64::MAX },
            _ => return None,
        })
    }

    /// Every registered policy with default knobs — the policy-matrix
    /// tests and the compaction bench iterate this.
    pub fn matrix() -> Vec<MergePolicy> {
        POLICY_NAMES.iter().map(|n| MergePolicy::by_name(n).unwrap()).collect()
    }

    /// Resolve the configuration to its mechanism.
    pub fn build(&self) -> Arc<dyn CompactionPolicy> {
        match *self {
            MergePolicy::Prefix { max_mergeable_size, max_tolerable_components } => {
                Arc::new(PrefixPolicy { max_mergeable_size, max_tolerable_components })
            }
            MergePolicy::Constant { max_components } => Arc::new(ConstantPolicy { max_components }),
            MergePolicy::NoMerge => Arc::new(NoMergePolicy),
            MergePolicy::Leveled { level0_components, base_bytes, fanout } => {
                Arc::new(LeveledPolicy {
                    level0_components,
                    classes: SizeClasses::new(base_bytes, fanout),
                })
            }
            MergePolicy::Tiered { base_bytes, size_ratio, min_tier_runs } => {
                Arc::new(TieredPolicy {
                    min_tier_runs,
                    classes: SizeClasses::new(base_bytes, size_ratio),
                })
            }
            MergePolicy::LazyLeveled { tier_runs, base_bytes, fanout } => {
                Arc::new(LazyLeveledPolicy {
                    tier_runs,
                    classes: SizeClasses::new(base_bytes, fanout),
                })
            }
            MergePolicy::Fifo { max_components, max_total_bytes } => {
                Arc::new(FifoPolicy { max_components, max_total_bytes })
            }
        }
    }

    /// Convenience: decide directly over a component list.
    pub fn decide(&self, components: &[Arc<DiskComponent>]) -> CompactionDecision {
        let runs: Vec<RunMeta> = components.iter().map(|c| RunMeta::of(c)).collect();
        self.build().decide(&runs)
    }
}

/// Registry names, in matrix order.
pub const POLICY_NAMES: [&str; 7] =
    ["prefix", "constant", "nomerge", "leveled", "tiered", "lazy-leveled", "fifo"];

/// Geometric size classes: class 0 holds runs ≤ `base_bytes`, class *k*
/// holds runs ≤ `base_bytes · ratio^k`.
#[derive(Debug, Clone, Copy)]
struct SizeClasses {
    base_bytes: u64,
    ratio: u64,
}

impl SizeClasses {
    fn new(base_bytes: u64, ratio: u64) -> Self {
        SizeClasses { base_bytes: base_bytes.max(1), ratio: ratio.max(2) }
    }

    fn class(&self, bytes: u64) -> u32 {
        let mut cap = self.base_bytes;
        let mut class = 0u32;
        while bytes > cap {
            class += 1;
            cap = cap.saturating_mul(self.ratio);
        }
        class
    }
}

#[derive(Debug)]
struct PrefixPolicy {
    max_mergeable_size: u64,
    max_tolerable_components: usize,
}

impl CompactionPolicy for PrefixPolicy {
    fn name(&self) -> &'static str {
        "prefix"
    }

    fn decide(&self, runs: &[RunMeta]) -> CompactionDecision {
        // Walk from the newest end, collecting small components.
        let run = runs.iter().rev().take_while(|r| r.bytes <= self.max_mergeable_size).count();
        if run > self.max_tolerable_components && run >= 2 {
            CompactionDecision::Merge(MergePick::contiguous(
                runs.len() - run..runs.len(),
                MergeTrigger::ComponentCount,
            ))
        } else {
            CompactionDecision::None
        }
    }
}

#[derive(Debug)]
struct ConstantPolicy {
    max_components: usize,
}

impl CompactionPolicy for ConstantPolicy {
    fn name(&self) -> &'static str {
        "constant"
    }

    fn decide(&self, runs: &[RunMeta]) -> CompactionDecision {
        // Skip an oldest prefix of runs that each outweigh everything newer
        // combined: merging such a giant rewrites almost all its bytes to
        // reduce the component count by at most the same amount as merging
        // only the newer runs.
        let mut start = 0usize;
        while start < runs.len() {
            let newer: u64 = runs[start + 1..].iter().map(|r| r.bytes).sum();
            if runs[start].bytes > newer && newer > 0 {
                start += 1;
            } else {
                break;
            }
        }
        let n = runs.len() - start;
        if n > self.max_components && n >= 2 {
            CompactionDecision::Merge(MergePick::contiguous(
                start..runs.len(),
                MergeTrigger::ComponentCount,
            ))
        } else {
            CompactionDecision::None
        }
    }
}

#[derive(Debug)]
struct NoMergePolicy;

impl CompactionPolicy for NoMergePolicy {
    fn name(&self) -> &'static str {
        "nomerge"
    }

    fn decide(&self, _runs: &[RunMeta]) -> CompactionDecision {
        CompactionDecision::None
    }
}

#[derive(Debug)]
struct LeveledPolicy {
    level0_components: usize,
    classes: SizeClasses,
}

impl CompactionPolicy for LeveledPolicy {
    fn name(&self) -> &'static str {
        "leveled"
    }

    fn decide(&self, runs: &[RunMeta]) -> CompactionDecision {
        // L0 rule: flushed runs collect in the base size class at the
        // newest end; once more than `level0_components` accumulate, merge
        // them down into the adjacent older run (classic L0 → L1 push).
        let l0 = runs.iter().rev().take_while(|r| self.classes.class(r.bytes) == 0).count();
        if l0 > self.level0_components && l0 >= 2 {
            let start = (runs.len() - l0).saturating_sub(1);
            return CompactionDecision::Merge(MergePick::contiguous(
                start..runs.len(),
                MergeTrigger::ComponentCount,
            ));
        }
        // One run per level below L0: a newer run that has grown into (or
        // past) its older neighbor's size class merges with it.
        for i in (0..runs.len().saturating_sub(1)).rev() {
            let newer = self.classes.class(runs[i + 1].bytes);
            if newer > 0 && newer >= self.classes.class(runs[i].bytes) {
                return CompactionDecision::Merge(MergePick::contiguous(
                    i..i + 2,
                    MergeTrigger::LevelOverflow,
                ));
            }
        }
        CompactionDecision::None
    }

    fn levels(&self, runs: &[RunMeta]) -> Vec<u32> {
        runs.iter().map(|r| self.classes.class(r.bytes)).collect()
    }
}

#[derive(Debug)]
struct TieredPolicy {
    min_tier_runs: usize,
    classes: SizeClasses,
}

impl CompactionPolicy for TieredPolicy {
    fn name(&self) -> &'static str {
        "tiered"
    }

    fn decide(&self, runs: &[RunMeta]) -> CompactionDecision {
        // Scan newest → oldest, grouping contiguous same-class runs; the
        // newest full tier merges (into a run of the next class up).
        let mut end = runs.len();
        while end > 0 {
            let class = self.classes.class(runs[end - 1].bytes);
            let mut start = end - 1;
            while start > 0 && self.classes.class(runs[start - 1].bytes) == class {
                start -= 1;
            }
            if end - start >= self.min_tier_runs && end - start >= 2 {
                return CompactionDecision::Merge(MergePick::contiguous(
                    start..end,
                    MergeTrigger::TierFull,
                ));
            }
            end = start;
        }
        CompactionDecision::None
    }

    fn levels(&self, runs: &[RunMeta]) -> Vec<u32> {
        runs.iter().map(|r| self.classes.class(r.bytes)).collect()
    }
}

#[derive(Debug)]
struct LazyLeveledPolicy {
    tier_runs: usize,
    classes: SizeClasses,
}

impl CompactionPolicy for LazyLeveledPolicy {
    fn name(&self) -> &'static str {
        "lazy-leveled"
    }

    fn decide(&self, runs: &[RunMeta]) -> CompactionDecision {
        // Tiered at L0: merge the newest suffix of base-class runs once
        // `tier_runs` accumulate (without pulling in the older run —
        // that's the "lazy" part).
        let l0 = runs.iter().rev().take_while(|r| self.classes.class(r.bytes) == 0).count();
        if l0 >= self.tier_runs && l0 >= 2 {
            return CompactionDecision::Merge(MergePick::contiguous(
                runs.len() - l0..runs.len(),
                MergeTrigger::TierFull,
            ));
        }
        // Leveled below: one run per level.
        for i in (0..runs.len().saturating_sub(1)).rev() {
            let newer = self.classes.class(runs[i + 1].bytes);
            if newer > 0 && newer >= self.classes.class(runs[i].bytes) {
                return CompactionDecision::Merge(MergePick::contiguous(
                    i..i + 2,
                    MergeTrigger::LevelOverflow,
                ));
            }
        }
        CompactionDecision::None
    }

    fn levels(&self, runs: &[RunMeta]) -> Vec<u32> {
        runs.iter().map(|r| self.classes.class(r.bytes)).collect()
    }
}

#[derive(Debug)]
struct FifoPolicy {
    max_components: usize,
    max_total_bytes: u64,
}

impl CompactionPolicy for FifoPolicy {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn decide(&self, runs: &[RunMeta]) -> CompactionDecision {
        let mut count = runs.len();
        let mut bytes: u64 = runs.iter().map(|r| r.bytes).sum();
        let mut drop = 0usize;
        while drop < runs.len() && (count > self.max_components || bytes > self.max_total_bytes) {
            bytes -= runs[drop].bytes;
            count -= 1;
            drop += 1;
        }
        if drop > 0 {
            CompactionDecision::Retire(drop)
        } else {
            CompactionDecision::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{ComponentBuilder, ComponentId};
    use crate::entry::EntryKind;
    use std::sync::Arc;
    use tc_compress::CompressionScheme;
    use tc_storage::device::{Device, DeviceProfile};

    /// Build a real component with approximately `kb` kilobytes of payload
    /// (exercises the `RunMeta::of` path; most tests below use bare
    /// `RunMeta`s).
    fn comp(seq: u64, kb: usize) -> Arc<DiskComponent> {
        let device = Arc::new(Device::new(DeviceProfile::RAM));
        let mut b = ComponentBuilder::new(device, 1024, CompressionScheme::None, kb, 10);
        for i in 0..kb {
            let key = ((seq << 32) + i as u64).to_be_bytes();
            b.push(&key, EntryKind::Record, &[0u8; 1024]).unwrap();
        }
        Arc::new(b.finish(ComponentId::flushed(seq), None, true).unwrap())
    }

    /// `n` runs of `kb` kilobytes each.
    fn runs(sizes_kb: &[u64]) -> Vec<RunMeta> {
        sizes_kb.iter().map(|kb| RunMeta::new(kb * 1024, *kb)).collect()
    }

    fn merge_of(d: CompactionDecision) -> MergePick {
        match d {
            CompactionDecision::Merge(p) => p,
            other => panic!("expected a merge, got {other:?}"),
        }
    }

    #[test]
    fn no_merge_never_fires() {
        let comps: Vec<_> = (0..10).map(|i| comp(i, 1)).collect();
        assert_eq!(MergePolicy::NoMerge.decide(&comps), CompactionDecision::None);
    }

    #[test]
    fn constant_policy_merges_everything_over_threshold() {
        let p = MergePolicy::Constant { max_components: 4 };
        assert_eq!(p.build().decide(&runs(&[1; 4])), CompactionDecision::None);
        assert_eq!(merge_of(p.build().decide(&runs(&[1; 5]))).indices, vec![0, 1, 2, 3, 4],);
    }

    #[test]
    fn prefix_policy_skips_large_components() {
        // One large old component + 6 small new ones: merge only the small
        // run (verified through real components via `RunMeta::of`).
        let mut comps = vec![comp(0, 300)]; // ~300 KB
        for i in 1..7 {
            comps.push(comp(i, 1));
        }
        let p = MergePolicy::Prefix { max_mergeable_size: 100 * 1024, max_tolerable_components: 5 };
        assert_eq!(merge_of(p.decide(&comps)).indices, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn prefix_policy_waits_for_tolerable_count() {
        let p = MergePolicy::Prefix { max_mergeable_size: 100 * 1024, max_tolerable_components: 5 };
        assert_eq!(p.build().decide(&runs(&[1; 5])), CompactionDecision::None, "5 are tolerable");
        let pick = merge_of(p.build().decide(&runs(&[1; 6])));
        assert_eq!(pick.indices, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(pick.trigger, MergeTrigger::ComponentCount);
        assert!(pick.includes_oldest());
    }

    // ---- decide edge cases, per policy: empty and singleton lists ----

    #[test]
    fn empty_and_singleton_lists_never_fire() {
        for policy in MergePolicy::matrix() {
            let built = policy.build();
            assert_eq!(built.decide(&[]), CompactionDecision::None, "{policy:?} on empty");
            assert_eq!(
                built.decide(&runs(&[10_000])),
                CompactionDecision::None,
                "{policy:?} on singleton"
            );
        }
        // Even a FIFO whose caps a single run exceeds must not fire on a
        // count cap of ≥ 1...
        let fifo = MergePolicy::Fifo { max_components: 1, max_total_bytes: u64::MAX }.build();
        assert_eq!(fifo.decide(&runs(&[5])), CompactionDecision::None);
        // ...but a byte cap genuinely below the singleton retires it (TTL
        // semantics: the data is expired, however little remains).
        let fifo = MergePolicy::Fifo { max_components: usize::MAX, max_total_bytes: 1024 }.build();
        assert_eq!(fifo.decide(&runs(&[5])), CompactionDecision::Retire(1));
    }

    // ---- exact threshold boundaries ----

    #[test]
    fn leveled_l0_threshold_boundary() {
        let p = MergePolicy::Leveled { level0_components: 3, base_bytes: 64 * 1024, fanout: 4 };
        // Three base-class runs: tolerable.
        assert_eq!(p.build().decide(&runs(&[10, 10, 10])), CompactionDecision::None);
        // Four: merge all of L0 (no older run to push into).
        assert_eq!(merge_of(p.build().decide(&runs(&[10, 10, 10, 10]))).indices, vec![0, 1, 2, 3]);
        // Four plus an older big run: the push-down includes the neighbor.
        let pick = merge_of(p.build().decide(&runs(&[500, 10, 10, 10, 10])));
        assert_eq!(pick.indices, vec![0, 1, 2, 3, 4]);
        assert_eq!(pick.trigger, MergeTrigger::ComponentCount);
    }

    #[test]
    fn leveled_level_overflow_fires_on_class_collision() {
        let p = MergePolicy::Leveled { level0_components: 3, base_bytes: 64 * 1024, fanout: 4 };
        // Classes: 64K base, 256K level 1, 1M level 2. A 200K run next to
        // an older 250K run — both level 1 — violates one-run-per-level.
        let pick = merge_of(p.build().decide(&runs(&[250, 200, 10])));
        assert_eq!(pick.indices, vec![0, 1]);
        assert_eq!(pick.trigger, MergeTrigger::LevelOverflow);
        // Strictly decreasing classes oldest → newest is stable.
        assert_eq!(p.build().decide(&runs(&[2000, 250, 10])), CompactionDecision::None);
    }

    #[test]
    fn tiered_tier_boundary() {
        let p = MergePolicy::Tiered { base_bytes: 64 * 1024, size_ratio: 4, min_tier_runs: 3 };
        assert_eq!(p.build().decide(&runs(&[10, 10])), CompactionDecision::None);
        let pick = merge_of(p.build().decide(&runs(&[10, 10, 10])));
        assert_eq!(pick.indices, vec![0, 1, 2]);
        assert_eq!(pick.trigger, MergeTrigger::TierFull);
        // The newest full tier wins even when an older tier is also full.
        let pick = merge_of(p.build().decide(&runs(&[200, 200, 200, 10, 10, 10])));
        assert_eq!(pick.indices, vec![3, 4, 5]);
    }

    #[test]
    fn tiered_merges_older_full_tier_when_newest_is_partial() {
        let p = MergePolicy::Tiered { base_bytes: 64 * 1024, size_ratio: 4, min_tier_runs: 3 };
        let pick = merge_of(p.build().decide(&runs(&[200, 200, 200, 10, 10])));
        assert_eq!(pick.indices, vec![0, 1, 2]);
    }

    #[test]
    fn lazy_leveled_tiers_l0_and_levels_the_rest() {
        let p = MergePolicy::LazyLeveled { tier_runs: 3, base_bytes: 64 * 1024, fanout: 4 };
        // L0 tier fills: merge only the base-class suffix, not the older run.
        let pick = merge_of(p.build().decide(&runs(&[500, 10, 10, 10])));
        assert_eq!(pick.indices, vec![1, 2, 3]);
        assert_eq!(pick.trigger, MergeTrigger::TierFull);
        // Below L0, the leveled pair rule applies.
        let pick = merge_of(p.build().decide(&runs(&[250, 200, 10])));
        assert_eq!(pick.indices, vec![0, 1]);
        assert_eq!(pick.trigger, MergeTrigger::LevelOverflow);
    }

    #[test]
    fn fifo_count_and_byte_caps() {
        let p = MergePolicy::Fifo { max_components: 3, max_total_bytes: u64::MAX }.build();
        assert_eq!(p.decide(&runs(&[1, 1, 1])), CompactionDecision::None);
        assert_eq!(p.decide(&runs(&[1, 1, 1, 1])), CompactionDecision::Retire(1));
        assert_eq!(p.decide(&runs(&[1, 1, 1, 1, 1, 1])), CompactionDecision::Retire(3));
        let p =
            MergePolicy::Fifo { max_components: usize::MAX, max_total_bytes: 64 * 1024 }.build();
        // 10 + 30 + 30 KB = 70 KB > 64 KB: dropping the oldest 10 KB run
        // gets back under the cap.
        assert_eq!(p.decide(&runs(&[10, 30, 30])), CompactionDecision::Retire(1));
        // 10 + 30 + 40 KB = 80 KB: the oldest drop isn't enough, the 30 KB
        // run goes too.
        assert_eq!(p.decide(&runs(&[10, 30, 40])), CompactionDecision::Retire(2));
    }

    // ---- one oversized component mid-run ----

    #[test]
    fn oversized_component_mid_run() {
        let sizes = runs(&[1, 1, 5000, 1, 1, 1, 1, 1, 1]);
        // Prefix: the small-component run stops at the giant.
        let p = MergePolicy::Prefix { max_mergeable_size: 100 * 1024, max_tolerable_components: 5 };
        assert_eq!(merge_of(p.build().decide(&sizes)).indices, vec![3, 4, 5, 6, 7, 8]);
        // Constant: a mid-run giant is *not* a dominating prefix — the
        // documented semantics merge everything, giant included.
        let p = MergePolicy::Constant { max_components: 5 };
        assert_eq!(merge_of(p.build().decide(&sizes)).indices.len(), 9);
        // Leveled: the giant is simply a higher level; L0 counting stops at
        // it only positionally (it sits below the L0 suffix).
        let p = MergePolicy::Leveled { level0_components: 5, base_bytes: 64 * 1024, fanout: 4 };
        assert_eq!(merge_of(p.build().decide(&sizes)).indices, vec![2, 3, 4, 5, 6, 7, 8]);
        // Tiered: the giant splits the base tier; only the newest
        // contiguous group counts.
        let p = MergePolicy::Tiered { base_bytes: 64 * 1024, size_ratio: 4, min_tier_runs: 4 };
        assert_eq!(merge_of(p.build().decide(&sizes)).indices, vec![3, 4, 5, 6, 7, 8]);
    }

    // ---- satellite fix: Constant vs a dominating giant ----

    #[test]
    fn constant_policy_caps_oversized() {
        // A 5 MB component followed by six 1 KB runs: the old behavior
        // merged 0..7, rewriting 5 MB to collapse 6 KB. The giant now stays
        // out of the pick.
        let sizes = runs(&[5000, 1, 1, 1, 1, 1, 1]);
        let p = MergePolicy::Constant { max_components: 5 };
        let pick = merge_of(p.build().decide(&sizes));
        assert_eq!(pick.indices, vec![1, 2, 3, 4, 5, 6]);
        assert!(!pick.includes_oldest(), "the giant survives, so anti-matter must be kept");
        // Two stacked giants are both skipped.
        let sizes = runs(&[20_000, 5000, 1, 1, 1, 1, 1, 1]);
        assert_eq!(merge_of(p.build().decide(&sizes)).indices, vec![2, 3, 4, 5, 6, 7]);
        // A giant that no longer dominates (enough new data accumulated)
        // is merged again — the cap is about proportion, not size.
        let sizes = runs(&[5000, 2000, 2000, 2000, 1, 1]);
        assert_eq!(merge_of(p.build().decide(&sizes)).indices.len(), 6);
    }

    // ---- determinism: same input, same pick ----

    #[test]
    fn decisions_are_deterministic() {
        let sizes = runs(&[900, 300, 300, 40, 10, 5, 5, 5, 5]);
        for policy in MergePolicy::matrix() {
            let built = policy.build();
            let first = built.decide(&sizes);
            for _ in 0..10 {
                assert_eq!(built.decide(&sizes), first, "{policy:?} must be deterministic");
            }
            // Rebuilding the mechanism must not change the decision either.
            assert_eq!(policy.build().decide(&sizes), first);
        }
    }

    #[test]
    fn registry_round_trips_names() {
        for name in POLICY_NAMES {
            let policy = MergePolicy::by_name(name).expect("registered");
            assert_eq!(policy.name(), name);
            assert_eq!(policy.build().name(), name);
        }
        assert_eq!(MergePolicy::by_name("bogus"), None);
        assert_eq!(MergePolicy::matrix().len(), POLICY_NAMES.len());
    }

    #[test]
    fn levels_report_size_classes() {
        let p = MergePolicy::Leveled { level0_components: 3, base_bytes: 64 * 1024, fanout: 4 };
        // Caps: 64 KB (L0), 256 KB (L1), 1 MB (L2), 4 MB (L3).
        let levels = p.build().levels(&runs(&[2000, 200, 10]));
        assert_eq!(levels, vec![3, 1, 0]);
        // Policies without level structure put everything at level 0.
        let levels = MergePolicy::NoMerge.build().levels(&runs(&[2000, 200, 10]));
        assert_eq!(levels, vec![0, 0, 0]);
    }
}
