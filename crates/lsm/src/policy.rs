//! Merge policies (paper §2.2, [19, 29]).
//!
//! The paper's ingestion experiments use AsterixDB's default *prefix* merge
//! policy with a maximum mergeable component size and a maximum tolerable
//! component count (§4.3: 1 GB / 5 components). A constant policy and
//! no-merge are provided for ablations.

use crate::component::DiskComponent;

/// When and what to merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergePolicy {
    /// Merge the run of newest components, each smaller than
    /// `max_mergeable_size`, once more than `max_tolerable_components` of
    /// them accumulate.
    Prefix { max_mergeable_size: u64, max_tolerable_components: usize },
    /// Merge everything whenever more than `max_components` exist.
    Constant { max_components: usize },
    /// Never merge (bulk-load / ablation).
    NoMerge,
}

impl MergePolicy {
    /// The paper's feed-ingestion configuration, scaled: 1 GB max mergeable,
    /// 5 tolerable components (§4.3).
    pub fn paper_default(max_mergeable_size: u64) -> Self {
        MergePolicy::Prefix { max_mergeable_size, max_tolerable_components: 5 }
    }

    /// Decide which adjacent components (indexes into `components`, ordered
    /// oldest → newest) to merge. Returns a contiguous range.
    pub fn decide(
        &self,
        components: &[std::sync::Arc<DiskComponent>],
    ) -> Option<std::ops::Range<usize>> {
        match *self {
            MergePolicy::NoMerge => None,
            MergePolicy::Constant { max_components } => {
                if components.len() > max_components && components.len() >= 2 {
                    Some(0..components.len())
                } else {
                    None
                }
            }
            MergePolicy::Prefix { max_mergeable_size, max_tolerable_components } => {
                // Walk from the newest end, collecting small components.
                let mut run = 0usize;
                for c in components.iter().rev() {
                    if c.disk_bytes() <= max_mergeable_size {
                        run += 1;
                    } else {
                        break;
                    }
                }
                if run > max_tolerable_components && run >= 2 {
                    Some(components.len() - run..components.len())
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{ComponentBuilder, ComponentId};
    use crate::entry::EntryKind;
    use std::sync::Arc;
    use tc_compress::CompressionScheme;
    use tc_storage::device::{Device, DeviceProfile};

    /// Build a component with approximately `kb` kilobytes of payload.
    fn comp(seq: u64, kb: usize) -> Arc<DiskComponent> {
        let device = Arc::new(Device::new(DeviceProfile::RAM));
        let mut b = ComponentBuilder::new(device, 1024, CompressionScheme::None, kb, 10);
        for i in 0..kb {
            let key = ((seq << 32) + i as u64).to_be_bytes();
            b.push(&key, EntryKind::Record, &[0u8; 1024]).unwrap();
        }
        Arc::new(b.finish(ComponentId::flushed(seq), None, true).unwrap())
    }

    #[test]
    fn no_merge_never_fires() {
        let comps: Vec<_> = (0..10).map(|i| comp(i, 1)).collect();
        assert_eq!(MergePolicy::NoMerge.decide(&comps), None);
    }

    #[test]
    fn constant_policy_merges_everything_over_threshold() {
        let comps: Vec<_> = (0..4).map(|i| comp(i, 1)).collect();
        let p = MergePolicy::Constant { max_components: 4 };
        assert_eq!(p.decide(&comps), None);
        let comps: Vec<_> = (0..5).map(|i| comp(i, 1)).collect();
        assert_eq!(p.decide(&comps), Some(0..5));
    }

    #[test]
    fn prefix_policy_skips_large_components() {
        // One large old component + 6 small new ones: merge only the small
        // run.
        let mut comps = vec![comp(0, 300)]; // ~300 KB
        for i in 1..7 {
            comps.push(comp(i, 1));
        }
        let p = MergePolicy::Prefix { max_mergeable_size: 100 * 1024, max_tolerable_components: 5 };
        assert_eq!(p.decide(&comps), Some(1..7));
    }

    #[test]
    fn prefix_policy_waits_for_tolerable_count() {
        let comps: Vec<_> = (0..5).map(|i| comp(i, 1)).collect();
        let p = MergePolicy::Prefix { max_mergeable_size: 100 * 1024, max_tolerable_components: 5 };
        assert_eq!(p.decide(&comps), None, "5 components are tolerable");
        let comps: Vec<_> = (0..6).map(|i| comp(i, 1)).collect();
        assert_eq!(p.decide(&comps), Some(0..6));
    }
}
