//! Keys and entry encoding shared by the memtable, WAL, and components.

use tc_util::varint;

/// A primary (or composite secondary) key: byte strings compared
/// lexicographically. Integer keys use the order-preserving encodings below.
pub type Key = Vec<u8>;

/// What an entry represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    Record = 0,
    /// A delete marker (paper §2.2): annihilates any older record with the
    /// same key during merges and reads.
    AntiMatter = 1,
}

/// Order-preserving big-endian encoding for unsigned keys.
pub fn encode_u64_key(v: u64) -> Key {
    v.to_be_bytes().to_vec()
}

pub fn decode_u64_key(key: &[u8]) -> Option<u64> {
    Some(u64::from_be_bytes(key.try_into().ok()?))
}

/// Order-preserving encoding for signed keys (sign bit flipped so byte
/// order matches numeric order).
pub fn encode_i64_key(v: i64) -> Key {
    ((v as u64) ^ (1u64 << 63)).to_be_bytes().to_vec()
}

pub fn decode_i64_key(key: &[u8]) -> Option<i64> {
    let raw = u64::from_be_bytes(key.try_into().ok()?);
    Some((raw ^ (1u64 << 63)) as i64)
}

/// Composite key: secondary key bytes followed by the primary key, with the
/// secondary part length-delimited so ordering is (secondary, primary).
/// Fixed-width secondary encodings keep lexicographic order correct.
pub fn encode_composite_key(secondary: &[u8], primary: &[u8]) -> Key {
    let mut out = Vec::with_capacity(secondary.len() + primary.len());
    out.extend_from_slice(secondary);
    out.extend_from_slice(primary);
    out
}

/// Serialize one entry into a component block / WAL record:
/// `[varint klen][key][kind][varint plen][payload]` (payload only for
/// records).
pub fn write_entry(out: &mut Vec<u8>, key: &[u8], kind: EntryKind, payload: &[u8]) {
    varint::write_u64(out, key.len() as u64);
    out.extend_from_slice(key);
    out.push(kind as u8);
    if kind == EntryKind::Record {
        varint::write_u64(out, payload.len() as u64);
        out.extend_from_slice(payload);
    }
}

/// Parse one entry from `buf`; returns (key, kind, payload, bytes consumed).
#[allow(clippy::type_complexity)]
pub fn read_entry(buf: &[u8]) -> Option<(&[u8], EntryKind, &[u8], usize)> {
    let (klen, mut pos) = varint::read_u64(buf)?;
    let key = buf.get(pos..pos + klen as usize)?;
    pos += klen as usize;
    let kind = match *buf.get(pos)? {
        0 => EntryKind::Record,
        1 => EntryKind::AntiMatter,
        _ => return None,
    };
    pos += 1;
    let payload = if kind == EntryKind::Record {
        let (plen, n) = varint::read_u64(&buf[pos..])?;
        pos += n;
        let p = buf.get(pos..pos + plen as usize)?;
        pos += plen as usize;
        p
    } else {
        &buf[0..0]
    };
    Some((key, kind, payload, pos))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_keys_preserve_order() {
        let keys = [0u64, 1, 255, 256, 1 << 20, u64::MAX];
        let encoded: Vec<Key> = keys.iter().map(|&k| encode_u64_key(k)).collect();
        for w in encoded.windows(2) {
            assert!(w[0] < w[1]);
        }
        for (&k, e) in keys.iter().zip(&encoded) {
            assert_eq!(decode_u64_key(e), Some(k));
        }
    }

    #[test]
    fn i64_keys_preserve_order_across_zero() {
        let keys = [i64::MIN, -1000, -1, 0, 1, 1000, i64::MAX];
        let encoded: Vec<Key> = keys.iter().map(|&k| encode_i64_key(k)).collect();
        for w in encoded.windows(2) {
            assert!(w[0] < w[1]);
        }
        for (&k, e) in keys.iter().zip(&encoded) {
            assert_eq!(decode_i64_key(e), Some(k));
        }
    }

    #[test]
    fn composite_keys_sort_by_secondary_then_primary() {
        let a = encode_composite_key(&encode_i64_key(5), &encode_u64_key(99));
        let b = encode_composite_key(&encode_i64_key(5), &encode_u64_key(100));
        let c = encode_composite_key(&encode_i64_key(6), &encode_u64_key(0));
        assert!(a < b && b < c);
    }

    #[test]
    fn entry_roundtrip() {
        let mut buf = Vec::new();
        write_entry(&mut buf, b"key1", EntryKind::Record, b"payload");
        write_entry(&mut buf, b"key2", EntryKind::AntiMatter, &[]);
        write_entry(&mut buf, b"", EntryKind::Record, &[]);
        let (k, kind, p, n1) = read_entry(&buf).unwrap();
        assert_eq!((k, kind, p), (&b"key1"[..], EntryKind::Record, &b"payload"[..]));
        let (k, kind, p, n2) = read_entry(&buf[n1..]).unwrap();
        assert_eq!((k, kind, p), (&b"key2"[..], EntryKind::AntiMatter, &b""[..]));
        let (k, kind, p, n3) = read_entry(&buf[n1 + n2..]).unwrap();
        assert_eq!((k, kind, p), (&b""[..], EntryKind::Record, &b""[..]));
        assert_eq!(n1 + n2 + n3, buf.len());
    }

    #[test]
    fn truncated_entries_rejected() {
        let mut buf = Vec::new();
        write_entry(&mut buf, b"key", EntryKind::Record, b"data");
        for cut in 0..buf.len() {
            assert!(read_entry(&buf[..cut]).is_none(), "cut={cut}");
        }
    }
}
