//! Secondary indexes and the keys-only primary-key index.
//!
//! * [`SecondaryIndex`] — an LSM tree over composite `(secondary key,
//!   primary key)` byte keys with empty payloads. Range queries return the
//!   primary keys whose records the caller then point-looks-up in the
//!   primary index (the access path of Fig 24).
//! * [`PrimaryKeyIndex`] — an LSM tree storing primary keys only. Upserts
//!   consult it first so brand-new keys skip the expensive primary-index
//!   lookup (paper §3.2.2, following [28, 29]).

use std::sync::Arc;

use tc_storage::device::Device;
use tc_storage::error::StorageError;
use tc_storage::BufferCache;

use crate::entry::{encode_composite_key, Key};
use crate::hook::NoopHook;
use crate::tree::{LsmOptions, LsmTree};

/// An LSM-backed secondary index. Secondary keys must use fixed-width
/// order-preserving encodings (see [`crate::entry`]) so composite keys sort
/// by (secondary, primary).
pub struct SecondaryIndex {
    tree: LsmTree,
    secondary_width: usize,
}

impl SecondaryIndex {
    pub fn new(
        device: Arc<Device>,
        cache: Arc<BufferCache>,
        opts: LsmOptions,
        secondary_width: usize,
    ) -> Self {
        SecondaryIndex {
            tree: LsmTree::new(device, cache, Arc::new(NoopHook), opts),
            secondary_width,
        }
    }

    pub fn insert(&self, secondary: &[u8], primary: &[u8]) -> Result<(), StorageError> {
        debug_assert_eq!(secondary.len(), self.secondary_width);
        self.tree.insert(encode_composite_key(secondary, primary), Vec::new()).map(|_| ())
    }

    pub fn delete(&self, secondary: &[u8], primary: &[u8]) -> Result<(), StorageError> {
        self.tree.delete(encode_composite_key(secondary, primary), None).map(|_| ())
    }

    /// Primary keys whose secondary key lies in `[start, end)`.
    pub fn range(&self, start: &[u8], end: &[u8]) -> Vec<Key> {
        debug_assert_eq!(start.len(), self.secondary_width);
        let mut scan = self.tree.scan_range(Some(start), Some(end));
        let mut out = Vec::new();
        while let Some((k, _, _)) = scan.next() {
            out.push(k[self.secondary_width..].to_vec());
        }
        out
    }

    pub fn flush(&self) -> Result<(), StorageError> {
        self.tree.flush()
    }

    pub fn disk_bytes(&self) -> u64 {
        self.tree.disk_bytes()
    }

    pub fn stats(&self) -> crate::tree::LsmStats {
        self.tree.stats()
    }

    pub fn tree(&self) -> &LsmTree {
        &self.tree
    }
}

/// Keys-only LSM tree for existence checks.
pub struct PrimaryKeyIndex {
    tree: LsmTree,
}

impl PrimaryKeyIndex {
    pub fn new(device: Arc<Device>, cache: Arc<BufferCache>, opts: LsmOptions) -> Self {
        PrimaryKeyIndex { tree: LsmTree::new(device, cache, Arc::new(NoopHook), opts) }
    }

    pub fn insert(&self, key: &[u8]) -> Result<(), StorageError> {
        self.tree.insert(key.to_vec(), Vec::new()).map(|_| ())
    }

    pub fn delete(&self, key: &[u8]) -> Result<(), StorageError> {
        self.tree.delete(key.to_vec(), None).map(|_| ())
    }

    /// Does the key exist? (Bloom filters make the common "new key" case
    /// cheap — §3.2.2.)
    pub fn contains(&self, key: &[u8]) -> Result<bool, StorageError> {
        self.tree.contains(key)
    }

    pub fn flush(&self) -> Result<(), StorageError> {
        self.tree.flush()
    }

    pub fn disk_bytes(&self) -> u64 {
        self.tree.disk_bytes()
    }

    pub fn stats(&self) -> crate::tree::LsmStats {
        self.tree.stats()
    }

    pub fn tree(&self) -> &LsmTree {
        &self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::{encode_i64_key, encode_u64_key};
    use tc_storage::device::DeviceProfile;

    fn parts() -> (Arc<Device>, Arc<BufferCache>) {
        (Arc::new(Device::new(DeviceProfile::RAM)), Arc::new(BufferCache::new(256)))
    }

    #[test]
    fn range_query_returns_primary_keys_in_order() {
        let (d, c) = parts();
        let idx = SecondaryIndex::new(d, c, LsmOptions::default(), 8);
        // timestamps 100..200 map to pk = ts - 100
        for ts in 100i64..200 {
            idx.insert(&encode_i64_key(ts), &encode_u64_key((ts - 100) as u64)).unwrap();
        }
        idx.flush().unwrap();
        let pks = idx.range(&encode_i64_key(150), &encode_i64_key(160));
        let got: Vec<u64> = pks.iter().map(|k| crate::entry::decode_u64_key(k).unwrap()).collect();
        assert_eq!(got, (50..60).collect::<Vec<u64>>());
    }

    #[test]
    fn duplicate_secondary_keys_keep_all_primaries() {
        let (d, c) = parts();
        let idx = SecondaryIndex::new(d, c, LsmOptions::default(), 8);
        for pk in 0u64..5 {
            idx.insert(&encode_i64_key(42), &encode_u64_key(pk)).unwrap();
        }
        let pks = idx.range(&encode_i64_key(42), &encode_i64_key(43));
        assert_eq!(pks.len(), 5);
    }

    #[test]
    fn delete_removes_one_posting() {
        let (d, c) = parts();
        let idx = SecondaryIndex::new(d, c, LsmOptions::default(), 8);
        idx.insert(&encode_i64_key(1), &encode_u64_key(10)).unwrap();
        idx.insert(&encode_i64_key(1), &encode_u64_key(11)).unwrap();
        idx.delete(&encode_i64_key(1), &encode_u64_key(10)).unwrap();
        let pks = idx.range(&encode_i64_key(1), &encode_i64_key(2));
        assert_eq!(pks.len(), 1);
        assert_eq!(crate::entry::decode_u64_key(&pks[0]), Some(11));
    }

    #[test]
    fn primary_key_index_existence() {
        let (d, c) = parts();
        let pki = PrimaryKeyIndex::new(d, c, LsmOptions::default());
        for i in 0..100u64 {
            pki.insert(&encode_u64_key(i)).unwrap();
        }
        pki.flush().unwrap();
        assert!(pki.contains(&encode_u64_key(50)).unwrap());
        assert!(!pki.contains(&encode_u64_key(500)).unwrap());
        pki.delete(&encode_u64_key(50)).unwrap();
        assert!(!pki.contains(&encode_u64_key(50)).unwrap());
    }
}
