//! Flush/merge hooks — the extension point the tuple compactor plugs into.
//!
//! The paper frames the compactor as "piggybacking" on LSM lifecycle events
//! (§1, §5): flushes transform records and produce a metadata blob (the
//! inferred schema); merges pick a metadata blob from their inputs (the most
//! recent one — §3.1). The LSM engine itself stays format-agnostic.

/// Observer/transformer of component lifecycle events. One hook instance is
/// shared by all operations of one LSM tree (one dataset partition).
pub trait ComponentHook: Send + Sync {
    /// Called when a flush attempt starts, before any entry is processed.
    /// A stateful hook (the tuple compactor mutates its in-memory schema
    /// while processing records) snapshots the state it may need to restore
    /// if the flush fails on a storage fault.
    fn begin_flush(&self) {}

    /// Called when a flush attempt fails after `begin_flush`. The hook must
    /// restore the state snapshotted there, so a retried flush re-processes
    /// the same frozen entries against the same starting schema instead of
    /// double-evolving it.
    fn abort_flush(&self) {}

    /// Transform a record payload as it is flushed from the in-memory
    /// component to disk. The tuple compactor infers schema and compacts
    /// here; the default is identity.
    fn on_flush_record(&self, payload: &[u8]) -> Vec<u8> {
        payload.to_vec()
    }

    /// Process an anti-matter entry's attachment (the anti-schema) during
    /// flush. The attachment is discarded afterwards — anti-matter reaches
    /// disk as a bare key (§3.2.2).
    fn on_flush_antimatter(&self, _attachment: Option<&[u8]>) {}

    /// Called once per flush after all entries are processed; the returned
    /// blob is persisted in the new component's metadata page (the schema
    /// snapshot, §3.1).
    fn flush_metadata(&self) -> Option<Vec<u8>> {
        None
    }

    /// Choose the metadata blob for a merged component. `inputs` are the
    /// merged components' blobs ordered oldest → newest. The paper's rule:
    /// keep the newest (it is a superset of the rest), with no access to the
    /// in-memory schema so merges and flushes never synchronize.
    fn merge_metadata(&self, inputs: &[Option<&[u8]>]) -> Option<Vec<u8>> {
        inputs.iter().rev().find_map(|m| m.map(<[u8]>::to_vec))
    }
}

/// The no-op hook used by open/closed (non-inferred) datasets.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopHook;

impl ComponentHook for NoopHook {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_hook_is_identity() {
        let h = NoopHook;
        assert_eq!(h.on_flush_record(b"abc"), b"abc".to_vec());
        assert_eq!(h.flush_metadata(), None);
    }

    #[test]
    fn merge_metadata_picks_newest_present() {
        let h = NoopHook;
        let a = b"old".to_vec();
        let b = b"new".to_vec();
        assert_eq!(h.merge_metadata(&[Some(&a), Some(&b)]), Some(b"new".to_vec()));
        assert_eq!(h.merge_metadata(&[Some(&a), None]), Some(b"old".to_vec()));
        assert_eq!(h.merge_metadata(&[None, None]), None);
    }
}
