//! Pluggable columnar component bodies.
//!
//! The LSM engine is format-agnostic: payloads are byte strings. The AMAX
//! columnar layout (successor paper, "Columnar Formats for Schemaless
//! LSM-based Document Stores") needs to *interpret* those payloads during
//! flush/merge — decode, shred into typed column pages, and reconstruct on
//! scan — which only the format layer knows how to do. These two traits are
//! the seam: `tc_columnar` implements them against the vector codec and the
//! inferred schema; `tc_lsm` stays payload-blind and merely routes a
//! component's entries through the codec when the tree is in columnar mode.
//!
//! Contract mirroring the row layout:
//! * `build_chunk` writes every column page (and any index blob) through the
//!   component's own `PageStore`, so `disk_bytes` and write-amplification
//!   accounting stay honest and PR 8's per-page CRC footers apply unchanged.
//! * Entries arrive strictly ascending by key; groups preserve that order,
//!   so `group_first_key` supports the same binary-search positioning as row
//!   blocks.
//! * `read_group_rows` returns the rows *as they were given* (same key,
//!   kind, payload bytes) — reconstruction must be lossless, which the
//!   format-equivalence proptest enforces end to end.

use tc_storage::buffer_cache::BufferCache;
use tc_storage::error::StorageError;
use tc_storage::page_store::PageStore;

use crate::entry::{EntryKind, Key};

/// Builds the columnar body of one disk component during flush/merge.
pub trait ColumnarCodec: Send + Sync + std::fmt::Debug {
    /// Shred `entries` (strictly ascending by key) into column pages written
    /// through `store`, returning the in-memory chunk handle. `schema_blob`
    /// is the component's metadata (the tuple compactor's serialized schema)
    /// when available — it decides which leaf paths get typed columns.
    fn build_chunk(
        &self,
        store: &PageStore,
        entries: &[(Key, EntryKind, Vec<u8>)],
        schema_blob: Option<&[u8]>,
    ) -> Result<Box<dyn ColumnarChunk>, StorageError>;
}

/// The readable columnar body of one disk component: row groups of column
/// page runs plus a column index. Scans either reconstruct full rows
/// (`read_group_rows`, the format-agnostic path every existing iterator
/// uses) or downcast via `as_any` to the concrete reader for typed,
/// column-pruned access.
pub trait ColumnarChunk: Send + Sync + std::fmt::Debug {
    /// Number of row groups; groups are ordered, keys ascending across and
    /// within groups.
    fn num_groups(&self) -> usize;

    /// Smallest key in group `g` (panics if out of range).
    fn group_first_key(&self, g: usize) -> &[u8];

    /// Reconstruct group `g`'s rows exactly as handed to `build_chunk`.
    /// Corruption surfaces as the same typed `StorageError`s row blocks
    /// produce, so quarantine and fail/degrade policies apply unchanged.
    #[allow(clippy::type_complexity)]
    fn read_group_rows(
        &self,
        store: &PageStore,
        cache: &BufferCache,
        g: usize,
    ) -> Result<Vec<(Key, EntryKind, Vec<u8>)>, StorageError>;

    /// Downcast hook for format-aware readers (typed column access,
    /// min/max group stats).
    fn as_any(&self) -> &dyn std::any::Any;
}
