//! The LSM tree: in-memory component + on-disk components + WAL, with the
//! flush/merge lifecycle the tuple compactor piggybacks on (paper §2.2,
//! §3.1).
//!
//! # Threading model
//!
//! The tree is internally synchronized so one writer, any number of
//! readers, and background flush/merge workers can share it through `&self`
//! (`Arc<LsmTree>`):
//!
//! * **`state: RwLock<TreeState>`** guards the mutable topology: the active
//!   memtable, the frozen memtable (mid-flush), the on-disk component list,
//!   and the displaced anti-schema queue. Writers take it briefly per
//!   operation; readers take it briefly to build an owned snapshot
//!   ([`MergedScan`] / cloned `Arc` component lists) and then read without
//!   any lock. Flush *freeze* and flush/merge *install* are the only other
//!   write acquisitions — both O(1) pointer swaps.
//! * **`flush_lock: Mutex<()>`** serializes flushes. A flush freezes the
//!   memtable (rotating the WAL in the same critical section, so the active
//!   WAL segment always covers exactly the active memtable), builds the
//!   component with no state lock held (this is where the compactor hook
//!   runs, guarded by its own schema mutex), then installs the component
//!   and clears the frozen memtable in one write-lock section — a reader
//!   snapshot can never see the flushed data twice or lose it.
//! * **`merge_lock: Mutex<()>`** serializes merges. A merge snapshots its
//!   input components, builds the merged component lock-free, and splices
//!   it in *by identity* (`Arc::ptr_eq`), so concurrent flush appends don't
//!   invalidate its indices. In-flight scans keep their `Arc`s to the old
//!   components (snapshot semantics).
//!
//! Schema commits keep the paper's discipline (§3.1.1): flush mutates the
//! in-memory schema under the compactor's own mutex before the component
//! becomes visible; merge picks a metadata blob from its inputs and never
//! touches the in-memory schema, so flushes and merges need no mutual
//! synchronization beyond the component-list swap.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::Instant;

use tc_compress::CompressionScheme;
use tc_storage::device::Device;
use tc_storage::error::StorageError;
use tc_storage::BufferCache;
use tc_util::sync::{ranks, OrderedMutex, OrderedRwLock, OrderedRwLockReadGuard};

use crate::columnar::ColumnarCodec;
use crate::component::{ComponentBuilder, ComponentId, DiskComponent};
use crate::entry::{EntryKind, Key};
use crate::hook::ComponentHook;
use crate::iter::MergedScan;
use crate::memtable::{MemEntry, Memtable};
use crate::policy::{
    CompactionDecision, CompactionPolicy, MergePick, MergePolicy, MergeTrigger, RunMeta,
    NUM_MERGE_TRIGGERS,
};
use crate::wal::Wal;

/// Per-tree configuration.
#[derive(Debug, Clone)]
pub struct LsmOptions {
    pub page_size: usize,
    pub compression: CompressionScheme,
    /// In-memory component budget in bytes; exceeding it triggers a flush.
    pub memtable_budget: usize,
    pub merge_policy: MergePolicy,
    pub bloom_bits_per_key: usize,
    /// Disable to model bulk-load (no transaction log, §4.3).
    pub wal_enabled: bool,
    /// Flush (and run the merge policy) inline on the writing thread when
    /// the memtable exceeds its budget. Disable when a background
    /// maintenance worker drives flushes instead — writers then never stall
    /// on flush work (the scheduler watches [`LsmTree::needs_flush`]).
    pub auto_flush: bool,
    /// Store a CRC-32 footer with every component data page and verify it
    /// on read. On by default; disable only to measure the checksum
    /// overhead (bench A/B) — without it, injected bit flips go undetected.
    pub integrity: bool,
    /// The codec that shreds flushed/merged entries into the columnar
    /// (AMAX) layout. Installing a codec only *enables* the capability;
    /// [`LsmTree::set_columnar`] decides whether new components actually
    /// use it — which is how merge-embedded format migration flips a live
    /// tree between layouts.
    pub columnar: Option<Arc<dyn ColumnarCodec>>,
}

impl Default for LsmOptions {
    fn default() -> Self {
        LsmOptions {
            page_size: 32 * 1024,
            compression: CompressionScheme::None,
            memtable_budget: 4 * 1024 * 1024,
            merge_policy: MergePolicy::Prefix {
                max_mergeable_size: 64 * 1024 * 1024,
                max_tolerable_components: 5,
            },
            bloom_bits_per_key: 10,
            wal_enabled: true,
            auto_flush: true,
            integrity: true,
            columnar: None,
        }
    }
}

/// Lifecycle statistics (ingestion experiments report these).
#[derive(Debug, Clone, Copy, Default)]
pub struct LsmStats {
    pub flushes: u64,
    pub merges: u64,
    pub entries_flushed: u64,
    pub entries_merged: u64,
    /// Nanoseconds the *writing* thread spent blocked in budget-triggered
    /// inline flush/merge work (`auto_flush`). Structurally zero when a
    /// background worker owns maintenance — the Fig 17 writer-stall metric.
    pub writer_stall_nanos: u64,
    /// Nanoseconds the writing thread spent blocked on *backpressure*:
    /// with background maintenance, writers stall only when ingest outruns
    /// the flush pipeline past the overhang cap (see the dataset's
    /// scheduler). Reported separately from inline stall so "the writer
    /// never flushes inline" stays a checkable invariant.
    pub backpressure_stall_nanos: u64,
    /// Faults the device's injection plan fired (always 0 in production —
    /// nonzero only while a [`tc_storage::fault::FaultPlan`] is armed).
    pub faults_injected: u64,
    /// Checksum verifications that failed on read (WAL records, data
    /// pages, or the LAF). Detected corruption, never decoded rows.
    pub checksum_failures: u64,
    /// Operations retried after a transient storage fault (writers and
    /// maintenance workers report their retries here).
    pub transient_retries: u64,
    /// Flush/merge rounds abandoned on a storage fault. The tree was left
    /// exactly as before each failed round; the work is re-triggered later.
    pub maintenance_errors: u64,
    /// Disk components currently quarantined as corrupt.
    pub quarantined_components: u64,
    /// Bytes of flushed components installed (the "first write" of every
    /// ingested byte — the write-amplification denominator).
    pub bytes_flushed: u64,
    /// Bytes of merged components installed (every byte rewritten by
    /// compaction counts again here).
    pub bytes_merged: u64,
    /// Completed merges per [`MergeTrigger`] (indexed by the trigger's
    /// discriminant).
    pub merges_by_trigger: [u64; NUM_MERGE_TRIGGERS],
    /// Components dropped whole by a FIFO/TTL retire decision.
    pub components_retired: u64,
    /// Entries (records + anti-matter) in retired components.
    pub entries_retired: u64,
    /// Column pages written by the columnar (AMAX) codec during
    /// flush/merge. Tree-level snapshots leave the four columnar counters
    /// at 0; the dataset layer injects them from the codec's counters.
    pub columnar_pages_written: u64,
    /// Row groups' column pages a columnar scan proved irrelevant from
    /// min/max stats and never faulted in.
    pub pages_skipped_by_stats: u64,
    /// Column blocks a columnar scan actually read (the column-pruning
    /// numerator: referenced columns only, not the whole component).
    pub columns_faulted_in: u64,
    /// Rows evaluated by the typed (no `Value` boxing) columnar filter
    /// loops — proof the zero-pivot fast path fired.
    pub columnar_typed_filter_rows: u64,
}

impl LsmStats {
    /// Cumulative write amplification: total component bytes written per
    /// byte first flushed. 1.0 means no compaction rewrites (no-merge /
    /// FIFO); leveled policies trend highest.
    pub fn write_amplification(&self) -> f64 {
        (self.bytes_flushed + self.bytes_merged) as f64 / self.bytes_flushed.max(1) as f64
    }
}

#[derive(Debug, Default)]
struct StatsCells {
    flushes: AtomicU64,
    merges: AtomicU64,
    entries_flushed: AtomicU64,
    entries_merged: AtomicU64,
    writer_stall_nanos: AtomicU64,
    backpressure_stall_nanos: AtomicU64,
    transient_retries: AtomicU64,
    maintenance_errors: AtomicU64,
    bytes_flushed: AtomicU64,
    bytes_merged: AtomicU64,
    merges_by_trigger: [AtomicU64; NUM_MERGE_TRIGGERS],
    components_retired: AtomicU64,
    entries_retired: AtomicU64,
}

impl StatsCells {
    fn snapshot(&self) -> LsmStats {
        let mut merges_by_trigger = [0u64; NUM_MERGE_TRIGGERS];
        for (out, cell) in merges_by_trigger.iter_mut().zip(&self.merges_by_trigger) {
            *out = cell.load(AtomicOrdering::Relaxed);
        }
        LsmStats {
            flushes: self.flushes.load(AtomicOrdering::Relaxed),
            merges: self.merges.load(AtomicOrdering::Relaxed),
            entries_flushed: self.entries_flushed.load(AtomicOrdering::Relaxed),
            entries_merged: self.entries_merged.load(AtomicOrdering::Relaxed),
            writer_stall_nanos: self.writer_stall_nanos.load(AtomicOrdering::Relaxed),
            backpressure_stall_nanos: self.backpressure_stall_nanos.load(AtomicOrdering::Relaxed),
            transient_retries: self.transient_retries.load(AtomicOrdering::Relaxed),
            maintenance_errors: self.maintenance_errors.load(AtomicOrdering::Relaxed),
            bytes_flushed: self.bytes_flushed.load(AtomicOrdering::Relaxed),
            bytes_merged: self.bytes_merged.load(AtomicOrdering::Relaxed),
            merges_by_trigger,
            components_retired: self.components_retired.load(AtomicOrdering::Relaxed),
            entries_retired: self.entries_retired.load(AtomicOrdering::Relaxed),
            faults_injected: 0,
            checksum_failures: 0,
            quarantined_components: 0,
            columnar_pages_written: 0,
            pages_skipped_by_stats: 0,
            columns_faulted_in: 0,
            columnar_typed_filter_rows: 0,
        }
    }
}

/// True when two components' key ranges cannot intersect (an empty
/// component is disjoint from everything).
fn key_disjoint(a: &DiskComponent, b: &DiskComponent) -> bool {
    match (a.min_key(), a.max_key(), b.min_key(), b.max_key()) {
        (Some(a_min), Some(a_max), Some(b_min), Some(b_max)) => a_max < b_min || b_max < a_min,
        _ => true,
    }
}

/// The lock-guarded mutable topology (see the module docs).
struct TreeState {
    /// The active in-memory component.
    mem: Memtable,
    /// The immutable in-memory component a flush is currently writing out.
    /// Readers merge it between `mem` and the disk components; it clears
    /// in the same critical section that installs the flushed component.
    frozen: Option<Arc<Memtable>>,
    /// Oldest → newest.
    disk: Vec<Arc<DiskComponent>>,
    /// Anti-schema attachments whose anti-matter entries were displaced by
    /// newer same-key writes in the memtable. Their *old, flushed* record
    /// versions were counted by earlier flushes, so the next flush must
    /// still hand them to the hook (§3.2.2 upsert path).
    pending_anti: Vec<Vec<u8>>,
    /// Inputs saved at freeze time so a flush that fails on a storage fault
    /// can be *resumed*: the retry re-processes the same frozen memtable
    /// with the same displaced anti-schemas and the same component
    /// sequence, without re-freezing (the WAL was already rotated).
    frozen_anti: Vec<Vec<u8>>,
    frozen_seq: u64,
    /// True only when a flush aborted *cleanly* on a storage error (hook
    /// state rolled back via `abort_flush`). A frozen memtable without this
    /// flag means a mid-build panic — retrying would double-apply hook
    /// mutations, so that case still fails loudly.
    frozen_resumable: bool,
    next_seq: u64,
}

/// A single-partition LSM tree, internally synchronized: one writer, many
/// readers, and background flush/merge may run concurrently through
/// `&self`. Cross-partition parallelism still lives above (partitions are
/// independent, §2.2); *within* a partition the ingestion order is the
/// caller's responsibility (one logical writer per partition).
pub struct LsmTree {
    opts: LsmOptions,
    /// The compaction mechanism resolved once from `opts.merge_policy`.
    policy: Arc<dyn CompactionPolicy>,
    device: Arc<Device>,
    cache: Arc<BufferCache>,
    hook: Arc<dyn ComponentHook>,
    state: OrderedRwLock<TreeState>,
    wal: Wal,
    /// Serializes flushes (freeze → build → install).
    flush_lock: OrderedMutex<()>,
    /// Serializes merges (decide → build → splice-by-identity).
    merge_lock: OrderedMutex<()>,
    stats: StatsCells,
    /// Emit new components in the columnar layout (requires
    /// `opts.columnar`). An atomic, not more lock state: flush/merge read
    /// it once when they create a builder, and flipping it mid-run only
    /// decides which layout the *next* component gets.
    columnar_on: AtomicBool,
}

/// A consistent read view of the tree, holding the state read lock.
///
/// While a view is alive, freezes and component installs are blocked, so
/// everything obtained through it — memtable lookups, component lists,
/// scans, *and any external state that must agree with them* (the dataset
/// captures its schema-dictionary snapshot through one of these) — refers
/// to the same instant. Drop it promptly; scans and cloned component lists
/// stay valid after the drop (they own their snapshot).
pub struct ReadView<'a> {
    guard: OrderedRwLockReadGuard<'a, TreeState>,
}

/// In-memory scan inputs from [`ReadView::mem_parts`]: the retained frozen
/// memtable (if a flush is in progress) and an owned copy of the active
/// memtable entries.
pub type MemParts = (Option<Arc<Memtable>>, Vec<(Key, EntryKind, Vec<u8>)>);

impl ReadView<'_> {
    /// Point lookup in the in-memory components only (active, then frozen).
    pub fn mem_entry(&self, key: &[u8]) -> Option<(EntryKind, Vec<u8>)> {
        let hit = self
            .guard
            .mem
            .get(key)
            .or_else(|| self.guard.frozen.as_deref().and_then(|f| f.get(key)));
        hit.map(|entry| match entry {
            MemEntry::Record(p) => (EntryKind::Record, p.clone()),
            MemEntry::AntiMatter(_) => (EntryKind::AntiMatter, Vec::new()),
        })
    }

    /// The disk components (oldest → newest) as owned handles.
    pub fn components(&self) -> Vec<Arc<DiskComponent>> {
        self.guard.disk.clone()
    }

    /// The in-memory scan inputs: a retained handle to the (immutable)
    /// frozen memtable and an owned copy of the active memtable from
    /// `start` onward. The active copy is the only per-entry work that
    /// belongs under the lock — the frozen memtable is immutable behind its
    /// `Arc`, so it is snapshotted (and the [`MergedScan`], whose heap
    /// priming reads disk blocks, is built) *after* the view drops — see
    /// [`LsmTree::scan_range`].
    pub fn mem_parts(&self, start: Option<&[u8]>) -> MemParts {
        (self.guard.frozen.clone(), crate::iter::snapshot_memtable(&self.guard.mem, start))
    }
}

impl LsmTree {
    pub fn new(
        device: Arc<Device>,
        cache: Arc<BufferCache>,
        hook: Arc<dyn ComponentHook>,
        opts: LsmOptions,
    ) -> Self {
        let wal = Wal::new(Arc::clone(&device));
        LsmTree {
            policy: opts.merge_policy.build(),
            opts,
            device,
            cache,
            hook,
            state: OrderedRwLock::new(
                ranks::TREE_STATE,
                TreeState {
                    mem: Memtable::new(),
                    frozen: None,
                    disk: Vec::new(),
                    pending_anti: Vec::new(),
                    frozen_anti: Vec::new(),
                    frozen_seq: 0,
                    frozen_resumable: false,
                    next_seq: 0,
                },
            ),
            wal,
            flush_lock: OrderedMutex::new(ranks::FLUSH_LOCK, ()),
            merge_lock: OrderedMutex::new(ranks::MERGE_LOCK, ()),
            stats: StatsCells::default(),
            columnar_on: AtomicBool::new(false),
        }
    }

    /// Choose the layout of components built from now on. A no-op request
    /// to enable columnar without a codec in [`LsmOptions`] panics — that's
    /// a wiring bug, not a runtime condition.
    pub fn set_columnar(&self, on: bool) {
        assert!(!on || self.opts.columnar.is_some(), "columnar mode requires a codec");
        self.columnar_on.store(on, AtomicOrdering::Release);
    }

    /// Will the next flush/merge emit a columnar component?
    pub fn columnar_enabled(&self) -> bool {
        self.columnar_on.load(AtomicOrdering::Acquire)
    }

    /// A component builder honoring the tree's page/compression/integrity
    /// options and its current layout choice — every flush, merge, and
    /// bulk-load builder must come from here.
    fn new_builder(&self, expected_keys: usize) -> ComponentBuilder {
        let mut b = ComponentBuilder::new(
            Arc::clone(&self.device),
            self.opts.page_size,
            self.opts.compression,
            expected_keys,
            self.opts.bloom_bits_per_key,
        )
        .with_integrity(self.opts.integrity);
        if self.columnar_enabled() {
            let codec = self.opts.columnar.as_ref().expect("set_columnar checked the codec");
            b = b.with_columnar(Arc::clone(codec));
        }
        b
    }

    /// Apply an entry to the active memtable under an already-held state
    /// lock, preserving any displaced anti-schema attachment (§3.2.2: the
    /// old, flushed version of an upserted record still needs its
    /// decrement). Every mutation path — live writes, conditional deletes,
    /// WAL replay — must go through this so the displacement rule can
    /// never diverge between them.
    fn apply_locked(st: &mut TreeState, key: Key, entry: MemEntry) {
        if let Some(MemEntry::AntiMatter(Some(att))) = st.mem.put(key, entry) {
            st.pending_anti.push(att);
        }
    }

    /// Log and apply an entry to the active memtable. One critical
    /// section, so the WAL order always matches the memtable state it
    /// covers. Returns whether the memtable ran over budget — measured
    /// under the lock already held, so the write hot path never re-locks
    /// just to check. A failed WAL append means the operation was NOT
    /// applied and must not be acknowledged: the memtable is untouched, so
    /// the caller may simply retry (transient faults) or give up.
    fn log_and_apply(&self, key: Key, entry: MemEntry) -> Result<bool, StorageError> {
        let mut st = self.state.write();
        if self.opts.wal_enabled {
            self.wal.log(&key, &entry)?;
        }
        Self::apply_locked(&mut st, key, entry);
        Ok(st.mem.bytes() >= self.opts.memtable_budget)
    }

    pub fn options(&self) -> &LsmOptions {
        &self.opts
    }

    /// Lifecycle + fault statistics. The fault counters live on the shared
    /// device (they cover WAL, page, and LAF I/O alike); quarantine is
    /// recomputed from the current component list.
    pub fn stats(&self) -> LsmStats {
        let mut s = self.stats.snapshot();
        s.faults_injected = self.device.faults_injected();
        s.checksum_failures = self.device.checksum_failures();
        s.quarantined_components =
            self.state.read().disk.iter().filter(|c| c.is_quarantined()).count() as u64;
        s
    }

    /// Record one transient-fault retry (writers and maintenance workers
    /// call this so the storm's cost shows up in [`LsmStats`]).
    pub fn note_retry(&self) {
        self.stats.transient_retries.fetch_add(1, AtomicOrdering::Relaxed);
    }

    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    pub fn cache(&self) -> &Arc<BufferCache> {
        &self.cache
    }

    /// A consistent read view (see [`ReadView`]).
    pub fn read_view(&self) -> ReadView<'_> {
        ReadView { guard: self.state.read() }
    }

    /// Snapshot of the on-disk components, oldest → newest.
    pub fn components(&self) -> Vec<Arc<DiskComponent>> {
        self.state.read().disk.clone()
    }

    /// Entries in memory (active + frozen) not yet installed on disk.
    pub fn memtable_len(&self) -> usize {
        let st = self.state.read();
        st.mem.len() + st.frozen.as_deref().map_or(0, Memtable::len)
    }

    /// Active memtable footprint in bytes.
    pub fn memtable_bytes(&self) -> usize {
        self.state.read().mem.bytes()
    }

    /// Is the active memtable over budget? Background maintenance
    /// schedulers poll this instead of flushing inline.
    pub fn needs_flush(&self) -> bool {
        self.memtable_bytes() >= self.opts.memtable_budget
    }

    /// Account time the writer spent blocked on maintenance backpressure —
    /// external flush schedulers call this when they stall the writer, so
    /// the cost is visible without polluting the inline-flush stall metric.
    pub fn note_backpressure_stall(&self, nanos: u64) {
        self.stats.backpressure_stall_nanos.fetch_add(nanos, AtomicOrdering::Relaxed);
    }

    /// Total on-disk footprint across components.
    pub fn disk_bytes(&self) -> u64 {
        self.components().iter().map(|c| c.disk_bytes()).sum()
    }

    /// Total live records (scan-count; O(n)).
    pub fn count(&self) -> u64 {
        let mut scan = self.scan();
        let mut n = 0;
        while scan.next().is_some() {
            n += 1;
        }
        n
    }

    // -----------------------------------------------------------------
    // Writes
    // -----------------------------------------------------------------

    /// Insert (or overwrite) a record. Returns whether the memtable is
    /// over budget after the write — already computed under the write
    /// lock, so external flush schedulers don't re-lock to poll
    /// [`LsmTree::needs_flush`] on the hot path. `Err` means the WAL append
    /// failed and the write was NOT applied (safe to retry).
    pub fn insert(&self, key: Key, payload: Vec<u8>) -> Result<bool, StorageError> {
        let over_budget = self.log_and_apply(key, MemEntry::Record(payload))?;
        self.maybe_flush(over_budget);
        Ok(over_budget)
    }

    /// Delete by key: inserts an anti-matter entry. `attachment` is the
    /// hook payload (the anti-schema, §3.2.2), processed and discarded at
    /// flush. Returns the over-budget flag, like [`LsmTree::insert`].
    pub fn delete(&self, key: Key, attachment: Option<Vec<u8>>) -> Result<bool, StorageError> {
        let over_budget = self.log_and_apply(key, MemEntry::AntiMatter(attachment))?;
        self.maybe_flush(over_budget);
        Ok(over_budget)
    }

    /// Delete with a *conditional* anti-schema: attach it only if the
    /// version being replaced was (or is being) counted by a flush.
    ///
    /// The caller cannot decide this from a prior lookup: between its
    /// lookup and this apply, a background flush may freeze the memtable,
    /// moving a "never observed" in-memory version into a component whose
    /// flush *does* count it (§3.2.2) — skipping the decrement would then
    /// leak schema counts. So the decision is made here, atomically under
    /// the state lock: a live record still in the *active* memtable was
    /// never observed by any flush (no attachment); anything older lives in
    /// the frozen memtable or on disk, where a flush has counted or is
    /// committed to counting it (attachment rides along, and the flush
    /// ordering guarantees the decrement lands after the count).
    pub fn delete_versioned(
        &self,
        key: Key,
        attachment_if_counted: Option<Vec<u8>>,
    ) -> Result<bool, StorageError> {
        let over_budget = {
            let mut st = self.state.write();
            let counted = !matches!(st.mem.get(&key), Some(MemEntry::Record(_)));
            let entry = MemEntry::AntiMatter(if counted { attachment_if_counted } else { None });
            if self.opts.wal_enabled {
                self.wal.log(&key, &entry)?;
            }
            Self::apply_locked(&mut st, key, entry);
            st.mem.bytes() >= self.opts.memtable_budget
        };
        self.maybe_flush(over_budget);
        Ok(over_budget)
    }

    /// Atomic upsert: replace the key's record and (conditionally) attach
    /// the displaced version's anti-schema, through ONE WAL record. The
    /// separate delete-then-insert sequence logs two records, and a crash
    /// between them replays the delete without the insert — losing the old,
    /// durably-acknowledged version of an upsert that was never acked.
    /// Here a crash replays both halves or neither.
    ///
    /// The "was the old version counted?" decision follows
    /// [`LsmTree::delete_versioned`], made under the same state lock.
    pub fn replace(
        &self,
        key: Key,
        payload: Vec<u8>,
        attachment_if_counted: Option<Vec<u8>>,
    ) -> Result<bool, StorageError> {
        let over_budget = {
            let mut st = self.state.write();
            let counted = !matches!(st.mem.get(&key), Some(MemEntry::Record(_)));
            let anti = if counted { attachment_if_counted } else { None };
            if self.opts.wal_enabled {
                self.wal.log_replace(&key, &payload, anti.as_deref())?;
            }
            // Same two applications the live delete+insert pair performs:
            // the anti-matter (displacing any previous entry), then the
            // record (displacing the anti-matter, which parks `anti` on the
            // pending anti-schema list for the next flush).
            Self::apply_locked(&mut st, key.clone(), MemEntry::AntiMatter(anti));
            Self::apply_locked(&mut st, key, MemEntry::Record(payload));
            st.mem.bytes() >= self.opts.memtable_budget
        };
        self.maybe_flush(over_budget);
        Ok(over_budget)
    }

    fn maybe_flush(&self, over_budget: bool) {
        if !self.opts.auto_flush || !over_budget {
            return;
        }
        // Inline maintenance stalls the writer — that stall is the metric
        // the background pipeline exists to remove (Fig 17). A maintenance
        // failure here does NOT fail the (already-acknowledged) write: the
        // tree is left as before, the error is counted, and the next
        // over-budget write re-triggers the flush.
        let start = Instant::now();
        if self.flush().is_ok() {
            let _ = self.maybe_merge();
        }
        self.stats
            .writer_stall_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, AtomicOrdering::Relaxed);
    }

    /// Flush the in-memory component to a new on-disk component, running
    /// every record through the hook (where the tuple compactor infers and
    /// compacts — §3.1.1). Safe to call from any thread; concurrent calls
    /// serialize, and a call that finds an empty memtable is a no-op.
    ///
    /// On a storage fault the flush aborts *cleanly*: the frozen memtable,
    /// its WAL coverage, and the hook's schema (rolled back through
    /// [`ComponentHook::abort_flush`]) are all exactly as before the build,
    /// and the next `flush` call resumes from the same frozen state.
    pub fn flush(&self) -> Result<(), StorageError> {
        self.flush_inner(true)
    }

    /// Failure injection: perform a flush but "crash" before the validity
    /// bit is set (and before the frozen WAL segment is discarded). The
    /// frozen in-memory component is lost, exactly as in a real crash
    /// (§3.1.2); writes that raced the flush stay in the active memtable
    /// and the active WAL segment.
    pub fn flush_crashing_before_validity(&self) {
        let _ = self.flush_inner(false);
    }

    fn flush_inner(&self, complete: bool) -> Result<(), StorageError> {
        let _flush = self.flush_lock.lock();
        // Freeze: swap the memtable out and rotate the WAL in one write-lock
        // section, so the active segment covers exactly the new (empty)
        // memtable. Readers from here on merge the frozen memtable.
        let (frozen, anti, seq) = {
            let mut st = self.state.write();
            if let Some(frozen) = &st.frozen {
                // A leftover frozen memtable is either a cleanly-aborted
                // flush (storage fault, hook rolled back) — resumed here
                // with the freeze inputs saved at freeze time — or the
                // residue of a mid-build panic, where retrying would
                // double-apply hook mutations and must fail loudly. The
                // check is a hard assert, not mutex poisoning, because the
                // real parking_lot (the planned vendor swap-back) doesn't
                // poison.
                assert!(
                    st.frozen_resumable,
                    "a previous flush aborted mid-build; refusing to flush"
                );
                (Arc::clone(frozen), st.frozen_anti.clone(), st.frozen_seq)
            } else {
                if st.mem.is_empty() {
                    return Ok(());
                }
                if self.opts.wal_enabled {
                    // A failed rotation leaves the WAL segments — and
                    // everything else — untouched; nothing was frozen yet.
                    self.wal.rotate()?;
                }
                let frozen = Arc::new(std::mem::take(&mut st.mem));
                st.frozen = Some(Arc::clone(&frozen));
                let anti = std::mem::take(&mut st.pending_anti);
                st.frozen_anti = anti.clone();
                let seq = st.next_seq;
                st.frozen_seq = seq;
                st.frozen_resumable = false;
                st.next_seq += 1;
                (frozen, anti, seq)
            }
        };

        // Build — the slow part — with no state lock held. The hook's
        // schema mutations synchronize on the compactor's own mutex;
        // `begin_flush` snapshots whatever `abort_flush` must restore.
        //
        // Anti-schemas displaced by in-memory overwrites still decrement
        // the schema for their flushed old versions.
        self.hook.begin_flush();
        let build = (|| {
            for att in &anti {
                self.hook.on_flush_antimatter(Some(att));
            }
            let mut builder = self.new_builder(frozen.len());
            for (key, entry) in frozen.iter() {
                match entry {
                    MemEntry::Record(payload) => {
                        let transformed = self.hook.on_flush_record(payload);
                        builder.push(key, EntryKind::Record, &transformed)?;
                    }
                    MemEntry::AntiMatter(att) => {
                        self.hook.on_flush_antimatter(att.as_deref());
                        builder.push(key, EntryKind::AntiMatter, &[])?;
                    }
                }
            }
            let metadata = self.hook.flush_metadata();
            builder.finish(ComponentId::flushed(seq), metadata, false)
        })();
        let component = match build {
            Ok(c) => c,
            Err(e) => {
                // Abort cleanly: roll the hook back, keep the frozen
                // memtable (and its WAL coverage) for a later resume, and
                // drop the half-written store on the floor — it was never
                // visible. The tree reads exactly as before this attempt.
                self.hook.abort_flush();
                self.state.write().frozen_resumable = true;
                self.stats.maintenance_errors.fetch_add(1, AtomicOrdering::Relaxed);
                return Err(e);
            }
        };
        let count = frozen.len() as u64;

        if complete {
            component.set_valid();
            let bytes = component.disk_bytes();
            // Install + unfreeze atomically: a reader snapshot sees the
            // flushed data exactly once (frozen memtable before, disk
            // component after — never both, never neither).
            {
                let mut st = self.state.write();
                st.disk.push(Arc::new(component));
                st.frozen = None;
                st.frozen_anti.clear();
                st.frozen_resumable = false;
            }
            if self.opts.wal_enabled {
                self.wal.discard_frozen();
            }
            self.stats.flushes.fetch_add(1, AtomicOrdering::Relaxed);
            self.stats.entries_flushed.fetch_add(count, AtomicOrdering::Relaxed);
            self.stats.bytes_flushed.fetch_add(bytes, AtomicOrdering::Relaxed);
        } else {
            // Crash: the invalid component is on disk; the frozen WAL
            // segment survives; the frozen in-memory component is gone.
            let mut st = self.state.write();
            st.disk.push(Arc::new(component));
            st.frozen = None;
            st.frozen_anti.clear();
            st.frozen_resumable = false;
        }
        Ok(())
    }

    /// Run the compaction policy to fixpoint: re-decide after every
    /// completed merge/retire until the policy is satisfied, so cascading
    /// policies (an L0 merge overflowing L1, a tier filling the next tier
    /// up) settle in one scheduling round. Terminates because every
    /// decision shrinks the component list the policy sees (merges take
    /// ≥ 2 inputs, retires drop ≥ 1). A storage fault abandons the round
    /// with the tree untouched (the half-built component is dropped,
    /// inputs stay installed); the policy re-fires later.
    pub fn maybe_merge(&self) -> Result<(), StorageError> {
        let guard = self.merge_lock.lock();
        loop {
            let disk = self.state.read().disk.clone();
            let runs: Vec<RunMeta> = disk.iter().map(|c| RunMeta::of(c)).collect();
            match self.policy.decide(&runs) {
                CompactionDecision::None => return Ok(()),
                CompactionDecision::Merge(pick) => {
                    let inputs = Self::gather_pick(&disk, &pick);
                    self.merge_locked(&inputs, pick.includes_oldest(), pick.trigger, &guard)?;
                }
                CompactionDecision::Retire(n) => {
                    assert!(n >= 1 && n <= disk.len(), "bad retire count from {:?}", self.policy);
                    self.retire_locked(&disk[..n], &guard);
                }
            }
        }
    }

    /// Per-level component counts as assigned by the active policy (all
    /// level 0 for policies without a level structure).
    pub fn level_counts(&self) -> Vec<u64> {
        let disk = self.state.read().disk.clone();
        let runs: Vec<RunMeta> = disk.iter().map(|c| RunMeta::of(c)).collect();
        let levels = self.policy.levels(&runs);
        let mut counts = vec![0u64; levels.iter().map(|l| *l as usize + 1).max().unwrap_or(0)];
        for level in levels {
            counts[level as usize] += 1;
        }
        counts
    }

    /// Validate a pick's indices against the component snapshot and gather
    /// the input handles. Non-contiguous picks are sound only when every
    /// *unpicked* component inside the pick's index span is key-disjoint
    /// from every picked component older than it — otherwise installing
    /// the merged result at the newest picked slot would reorder that
    /// component below versions that used to shadow it. Violations are
    /// policy bugs and fail loudly, like a bad merge range.
    fn gather_pick(disk: &[Arc<DiskComponent>], pick: &MergePick) -> Vec<Arc<DiskComponent>> {
        let ix = &pick.indices;
        assert!(
            ix.len() >= 2 && ix.windows(2).all(|w| w[0] < w[1]) && *ix.last().unwrap() < disk.len(),
            "bad merge pick {ix:?} for {} components",
            disk.len()
        );
        if !pick.is_contiguous() {
            let (oldest, newest) = (ix[0], *ix.last().unwrap());
            for skipped in (oldest + 1..newest).filter(|j| !ix.contains(j)) {
                for &picked in ix.iter().take_while(|&&i| i < skipped) {
                    assert!(
                        key_disjoint(&disk[skipped], &disk[picked]),
                        "unsound non-contiguous pick {ix:?}: skipped component {} overlaps \
                         picked older component {}",
                        disk[skipped].id(),
                        disk[picked].id()
                    );
                }
            }
        }
        ix.iter().map(|&i| Arc::clone(&disk[i])).collect()
    }

    /// Merge an explicit, possibly non-contiguous pick of component
    /// indices (oldest → newest, as of this call). The key-disjointness
    /// soundness condition is validated (see [`Self::gather_pick`]);
    /// anti-matter is garbage-collected only when the pick is a prefix
    /// starting at the oldest component.
    pub fn merge_indices(&self, indices: &[usize]) -> Result<(), StorageError> {
        let guard = self.merge_lock.lock();
        let disk = self.state.read().disk.clone();
        let pick = MergePick { indices: indices.to_vec(), trigger: MergeTrigger::Manual };
        let inputs = Self::gather_pick(&disk, &pick);
        self.merge_locked(&inputs, pick.includes_oldest(), pick.trigger, &guard)
    }

    /// Merge all on-disk components into one (bench/maintenance helper).
    pub fn force_full_merge(&self) -> Result<(), StorageError> {
        let guard = self.merge_lock.lock();
        let disk = self.state.read().disk.clone();
        if disk.len() >= 2 {
            self.merge_locked(&disk, true, MergeTrigger::Manual, &guard)?;
        }
        Ok(())
    }

    /// Failure injection: run a full merge but "crash" before the validity
    /// bit is set — the merged component lands on disk INVALID and the
    /// inputs are NOT spliced out, exactly the on-disk picture a crash
    /// between merge-write and install leaves behind. Recovery must drop
    /// the half-merged component and keep serving from the inputs.
    pub fn force_full_merge_crashing_before_validity(&self) -> Result<(), StorageError> {
        let _guard = self.merge_lock.lock();
        let disk = self.state.read().disk.clone();
        if disk.len() < 2 {
            return Ok(());
        }
        let (merged, _) = self.build_merged(&disk, true)?;
        self.state.write().disk.push(Arc::new(merged));
        Ok(())
    }

    /// Merge the adjacent component range (oldest..newest indexes as of
    /// this call). Annihilated records are garbage-collected; anti-matter
    /// survives only if older components remain outside the merge (§2.2).
    pub fn merge(&self, range: std::ops::Range<usize>) -> Result<(), StorageError> {
        let guard = self.merge_lock.lock();
        let disk = self.state.read().disk.clone();
        assert!(range.end <= disk.len() && range.len() >= 2, "bad merge range");
        let includes_oldest = range.start == 0;
        self.merge_locked(&disk[range], includes_oldest, MergeTrigger::Manual, &guard)
    }

    /// Build the merged component (INVALID; the caller decides whether it
    /// completes). Pure build: touches no tree state, so a fault here
    /// leaves nothing to clean up.
    fn build_merged(
        &self,
        inputs: &[Arc<DiskComponent>],
        includes_oldest: bool,
    ) -> Result<(DiskComponent, u64), StorageError> {
        let blobs: Vec<Option<&[u8]>> = inputs.iter().map(|c| c.metadata()).collect();
        let metadata = self.hook.merge_metadata(&blobs);
        let expected: usize = inputs.iter().map(|c| c.num_entries() as usize).sum();

        let mut builder = self.new_builder(expected);
        let mut count = 0u64;
        {
            let mut scan = MergedScan::new(&[], inputs, &self.cache, None, None, true);
            while let Some((key, kind, payload)) = scan.next() {
                match kind {
                    EntryKind::AntiMatter if includes_oldest => continue,
                    kind => {
                        builder.push(&key, kind, &payload)?;
                        count += 1;
                    }
                }
            }
            // A merge must never write a component that silently lost
            // rows to a corrupt input: surface the first error instead.
            if let Some((_, e)) = scan.take_health().degraded().first() {
                return Err(e.clone());
            }
        }
        let id = ComponentId::merged(inputs[0].id(), inputs[inputs.len() - 1].id());
        let merged = builder.finish(id, metadata, false)?;
        Ok((merged, count))
    }

    /// The merge body. The caller passes the merge-lock guard to prove the
    /// critical section; the merged component's metadata is chosen by the
    /// hook — the paper's rule keeps the newest schema without touching
    /// in-memory state (§3.1.1). On a fault nothing installs: the inputs
    /// remain the live components and the error is counted.
    fn merge_locked(
        &self,
        inputs: &[Arc<DiskComponent>],
        includes_oldest: bool,
        trigger: MergeTrigger,
        _guard: &tc_util::sync::OrderedMutexGuard<'_, ()>,
    ) -> Result<(), StorageError> {
        let (merged, count) = self.build_merged(inputs, includes_oldest).inspect_err(|_| {
            self.stats.maintenance_errors.fetch_add(1, AtomicOrdering::Relaxed);
        })?;
        merged.set_valid();
        let merged_bytes = merged.disk_bytes();
        // Swap in the merged component *by identity*: a concurrent flush
        // may have appended components while we built, so positions (not
        // membership — flushes only append, and merges serialize) may have
        // shifted. The merged component takes the *newest* input's slot —
        // for a non-contiguous pick, any component skipped inside the span
        // is older than the result's newest versions, and the
        // key-disjointness check proved it can't shadow the picked older
        // ones. Old inputs become garbage once in-flight scans drop their
        // Arcs (deleted after the merge completes, §2.2).
        {
            let mut st = self.state.write();
            let newest = inputs.last().expect("merge needs inputs");
            let pos = st
                .disk
                .iter()
                .position(|c| Arc::ptr_eq(c, newest))
                .expect("merge inputs disappeared from the component list");
            st.disk[pos] = Arc::new(merged);
            let rest = &inputs[..inputs.len() - 1];
            st.disk.retain(|c| !rest.iter().any(|i| Arc::ptr_eq(c, i)));
        }
        self.stats.merges.fetch_add(1, AtomicOrdering::Relaxed);
        self.stats.entries_merged.fetch_add(count, AtomicOrdering::Relaxed);
        self.stats.bytes_merged.fetch_add(merged_bytes, AtomicOrdering::Relaxed);
        self.stats.merges_by_trigger[trigger as usize].fetch_add(1, AtomicOrdering::Relaxed);
        Ok(())
    }

    /// Drop an oldest prefix of components whole (FIFO/TTL). No data is
    /// read or rewritten — the runs simply stop being served. Removal is
    /// by identity for the same reason merges install by identity.
    /// Deliberately lossy: live records in the retired runs are gone, and
    /// anti-matter above them now annihilates nothing (which is exactly
    /// the invariant that makes dropping only a *prefix* safe — nothing
    /// older remains to resurrect).
    fn retire_locked(
        &self,
        oldest: &[Arc<DiskComponent>],
        _guard: &tc_util::sync::OrderedMutexGuard<'_, ()>,
    ) {
        {
            let mut st = self.state.write();
            debug_assert!(
                oldest.iter().enumerate().all(|(i, c)| Arc::ptr_eq(&st.disk[i], c)),
                "retire must drop the current oldest prefix"
            );
            st.disk.retain(|c| !oldest.iter().any(|o| Arc::ptr_eq(c, o)));
        }
        let entries: u64 = oldest.iter().map(|c| c.num_entries()).sum();
        self.stats.components_retired.fetch_add(oldest.len() as u64, AtomicOrdering::Relaxed);
        self.stats.entries_retired.fetch_add(entries, AtomicOrdering::Relaxed);
    }

    /// Bulk-load a pre-sorted stream into a single component (paper §4.3:
    /// loading sorts records and builds one B+-tree bottom-up; the tuple
    /// compactor infers and compacts during the build). The tree must be
    /// empty.
    pub fn bulk_load<I>(&self, sorted: I) -> Result<(), StorageError>
    where
        I: IntoIterator<Item = (Key, Vec<u8>)>,
    {
        let _flush = self.flush_lock.lock();
        {
            let st = self.state.read();
            assert!(
                st.disk.is_empty() && st.mem.is_empty() && st.frozen.is_none(),
                "bulk_load requires an empty tree"
            );
        }
        let mut builder = self.new_builder(1024);
        let mut count = 0u64;
        for (key, payload) in sorted {
            let transformed = self.hook.on_flush_record(&payload);
            builder.push(&key, EntryKind::Record, &transformed)?;
            count += 1;
        }
        let metadata = self.hook.flush_metadata();
        // Reserve the sequence under the lock; build the component (the
        // slow device write) without it, so concurrent readers never block
        // on the load.
        let seq = {
            let mut st = self.state.write();
            let seq = st.next_seq;
            st.next_seq += 1;
            seq
        };
        let component = builder.finish(ComponentId::flushed(seq), metadata, false)?;
        component.set_valid();
        let bytes = component.disk_bytes();
        self.state.write().disk.push(Arc::new(component));
        self.stats.flushes.fetch_add(1, AtomicOrdering::Relaxed);
        self.stats.entries_flushed.fetch_add(count, AtomicOrdering::Relaxed);
        self.stats.bytes_flushed.fetch_add(bytes, AtomicOrdering::Relaxed);
        Ok(())
    }

    // -----------------------------------------------------------------
    // Reads
    // -----------------------------------------------------------------

    /// Point lookup returning the entry kind (deleted keys report their
    /// anti-matter). Note: the lookup deliberately does *not* report where
    /// the entry was found — with background flushes, "memtable vs disk" can
    /// change between a lookup and a subsequent write, so the counted/
    /// uncounted decision for anti-schemas is made atomically inside
    /// [`LsmTree::delete_versioned`] instead.
    pub fn get_entry(&self, key: &[u8]) -> Result<Option<(EntryKind, Vec<u8>)>, StorageError> {
        // Memtables are checked under the read lock (cheap map probes); the
        // component list is cloned so the disk probes — which may fault
        // pages in — run without blocking writers.
        let components = {
            let view = self.read_view();
            if let Some(hit) = view.mem_entry(key) {
                return Ok(Some(hit));
            }
            view.components()
        };
        Self::probe_components(&components, &self.cache, key)
    }

    /// Probe an owned component snapshot newest → oldest — the shared
    /// post-view resolution step for point lookups (used here and by the
    /// dataset's snapshot lookups, so the probe order can never diverge).
    /// A quarantined component fails the lookup with a typed error:
    /// skipping it could resurrect a deleted key or return a stale version,
    /// so point lookups never degrade (range scans do, with health
    /// reporting — see [`crate::iter::ScanHealth`]).
    pub fn probe_components(
        components: &[Arc<DiskComponent>],
        cache: &BufferCache,
        key: &[u8],
    ) -> Result<Option<(EntryKind, Vec<u8>)>, StorageError> {
        for c in components.iter().rev() {
            if c.is_quarantined() {
                return Err(StorageError::corruption(
                    "component",
                    format!("component {} is quarantined", c.id()),
                ));
            }
            if let Some(hit) = c.get(cache, key)? {
                return Ok(Some(hit));
            }
        }
        Ok(None)
    }

    /// Point lookup for a live record.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StorageError> {
        Ok(match self.get_entry(key)? {
            Some((EntryKind::Record, p)) => Some(p),
            _ => None,
        })
    }

    /// Does the key exist (live)? Used by the primary-key index fast path.
    pub fn contains(&self, key: &[u8]) -> Result<bool, StorageError> {
        Ok(matches!(self.get_entry(key)?, Some((EntryKind::Record, _))))
    }

    /// Full scan of live records (an owned, consistent snapshot).
    pub fn scan(&self) -> MergedScan {
        self.scan_range(None, None)
    }

    /// Range scan of live records, `start` inclusive, `end` exclusive.
    /// The read lock is held only for the active-memtable copy; the frozen
    /// snapshot and the scan — with its block-priming IO — are assembled
    /// after release.
    pub fn scan_range(&self, start: Option<&[u8]>, end: Option<&[u8]>) -> MergedScan {
        let (frozen, active, components) = {
            let view = self.read_view();
            let (frozen, active) = view.mem_parts(start);
            (frozen, active, view.components())
        };
        crate::iter::scan_from_tree_parts(
            frozen.as_deref(),
            active,
            &components,
            &self.cache,
            start,
            end,
        )
    }

    // -----------------------------------------------------------------
    // Crash & recovery (§3.1.2)
    // -----------------------------------------------------------------

    /// Simulate a process crash: the in-memory components vanish; disk
    /// components and the WAL survive as they are. Callers must quiesce
    /// background maintenance first (a worker mid-build would otherwise
    /// "survive" the crash and install its component afterwards).
    pub fn simulate_crash(&self) {
        let mut st = self.state.write();
        st.mem = Memtable::new();
        st.frozen = None;
        st.pending_anti.clear();
        st.frozen_anti.clear();
        st.frozen_resumable = false;
    }

    /// Recovery: discard invalid components (unset validity bit), then
    /// replay the WAL (frozen segment first) into a fresh in-memory
    /// component. Returns the number of (removed_components,
    /// replayed_operations). After recovery the caller may flush normally —
    /// the compactor hook "operates normally" on the restored component
    /// (§3.1.2).
    pub fn recover(&self) -> Result<(usize, usize), StorageError> {
        let _flush = self.flush_lock.lock();
        let _merge = self.merge_lock.lock();
        let mut st = self.state.write();
        let before = st.disk.len();
        st.disk.retain(|c| c.is_valid());
        let removed = before - st.disk.len();
        // Reset the sequence to follow the newest surviving component.
        st.next_seq = st.disk.last().map(|c| c.id().max + 1).unwrap_or(0);
        let ops = self.wal.replay()?;
        let replayed = ops.len();
        for (key, entry) in ops {
            // Anti-matter attachments re-make the `delete_versioned`
            // counted/uncounted decision against the *rebuilt* memtable.
            // The live decision can be voided by the crash: "counted"
            // meant the old version sat in the frozen memtable or on
            // disk, but if its covering flush never set the validity bit,
            // that version's insert is right here in the replayed WAL —
            // it was never durably counted, and letting its anti-schema
            // decrement the (recovered) schema would corrupt shared
            // counters. A Record present in the rebuilt memtable is
            // exactly that evidence, so the attachment is dropped;
            // conversely, no Record present means the old version's WAL
            // coverage was discarded by a *completed* flush, and the
            // decrement stands.
            let entry = match entry {
                MemEntry::AntiMatter(att) => {
                    let counted = !matches!(st.mem.get(&key), Some(MemEntry::Record(_)));
                    MemEntry::AntiMatter(if counted { att } else { None })
                }
                entry => entry,
            };
            // Same displacement rule as live writes, so replayed upserts
            // rebuild the pending anti-schema list too.
            Self::apply_locked(&mut st, key, entry);
        }
        Ok((removed, replayed))
    }

    /// The newest component's metadata blob (the schema the recovery
    /// manager reloads, §3.1.2).
    pub fn newest_metadata(&self) -> Option<Vec<u8>> {
        self.state.read().disk.iter().rev().find_map(|c| c.metadata().map(<[u8]>::to_vec))
    }

    /// Test/benchmark access to the WAL.
    pub fn wal(&self) -> &Wal {
        &self.wal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::encode_u64_key;
    use crate::hook::NoopHook;
    use tc_storage::device::DeviceProfile;

    fn tree(opts: LsmOptions) -> LsmTree {
        let device = Arc::new(Device::new(DeviceProfile::RAM));
        let cache = Arc::new(BufferCache::new(1024));
        LsmTree::new(device, cache, Arc::new(NoopHook), opts)
    }

    fn small_tree() -> LsmTree {
        tree(LsmOptions {
            page_size: 512,
            memtable_budget: 4 * 1024,
            merge_policy: MergePolicy::NoMerge,
            ..Default::default()
        })
    }

    #[test]
    fn insert_get_across_flushes() {
        let t = small_tree();
        for i in 0..200u64 {
            t.insert(encode_u64_key(i), format!("v{i}").into_bytes()).unwrap();
        }
        assert!(t.stats().flushes > 0, "budget should have forced flushes");
        assert!(t.stats().writer_stall_nanos > 0, "inline flushes stall the writer");
        for i in (0..200u64).step_by(17) {
            assert_eq!(t.get(&encode_u64_key(i)).unwrap(), Some(format!("v{i}").into_bytes()));
        }
        assert_eq!(t.get(&encode_u64_key(999)).unwrap(), None);
        assert_eq!(t.count(), 200);
    }

    #[test]
    fn delete_hides_record_across_components() {
        let t = small_tree();
        t.insert(encode_u64_key(1), b"one".to_vec()).unwrap();
        t.flush().unwrap();
        t.delete(encode_u64_key(1), None).unwrap();
        assert_eq!(t.get(&encode_u64_key(1)).unwrap(), None);
        t.flush().unwrap();
        assert_eq!(t.get(&encode_u64_key(1)).unwrap(), None);
        assert_eq!(t.count(), 0);
    }

    #[test]
    fn merge_annihilates_and_garbage_collects() {
        let t = small_tree();
        t.insert(encode_u64_key(0), b"Kim".to_vec()).unwrap();
        t.insert(encode_u64_key(1), b"John".to_vec()).unwrap();
        t.flush().unwrap(); // C0
        t.delete(encode_u64_key(0), None).unwrap();
        t.insert(encode_u64_key(2), b"Bob".to_vec()).unwrap();
        t.flush().unwrap(); // C1
        assert_eq!(t.components().len(), 2);
        t.force_full_merge().unwrap();
        assert_eq!(t.components().len(), 1);
        let merged = &t.components()[0];
        assert_eq!(merged.id().to_string(), "[C0,C1]");
        // Kim and the anti-matter annihilated: 2 live entries, 0 anti.
        assert_eq!(merged.num_entries(), 2);
        assert_eq!(merged.num_antimatter(), 0);
        assert_eq!(t.get(&encode_u64_key(0)).unwrap(), None);
        assert_eq!(t.get(&encode_u64_key(1)).unwrap(), Some(b"John".to_vec()));
    }

    #[test]
    fn partial_merge_preserves_antimatter() {
        let t = small_tree();
        t.insert(encode_u64_key(7), b"v".to_vec()).unwrap();
        t.flush().unwrap(); // C0 holds the record
        t.delete(encode_u64_key(7), None).unwrap();
        t.flush().unwrap(); // C1 holds anti-matter
        t.insert(encode_u64_key(8), b"w".to_vec()).unwrap();
        t.flush().unwrap(); // C2

        // Merge C1..C2 only: the anti-matter must survive, because C0 still
        // holds the record it kills.
        t.merge(1..3).unwrap();
        assert_eq!(t.components().len(), 2);
        assert_eq!(t.components()[1].num_antimatter(), 1);
        assert_eq!(t.get(&encode_u64_key(7)).unwrap(), None, "record must stay dead");
    }

    #[test]
    fn upsert_last_write_wins() {
        let t = small_tree();
        t.insert(encode_u64_key(5), b"a".to_vec()).unwrap();
        t.flush().unwrap();
        t.delete(encode_u64_key(5), None).unwrap();
        t.insert(encode_u64_key(5), b"b".to_vec()).unwrap();
        assert_eq!(t.get(&encode_u64_key(5)).unwrap(), Some(b"b".to_vec()));
        t.flush().unwrap();
        t.force_full_merge().unwrap();
        assert_eq!(t.get(&encode_u64_key(5)).unwrap(), Some(b"b".to_vec()));
        assert_eq!(t.count(), 1);
    }

    #[test]
    fn scan_merges_mem_and_disk() {
        let t = small_tree();
        t.insert(encode_u64_key(2), b"disk".to_vec()).unwrap();
        t.flush().unwrap();
        t.insert(encode_u64_key(1), b"mem".to_vec()).unwrap();
        t.insert(encode_u64_key(2), b"mem-override".to_vec()).unwrap();
        let mut scan = t.scan();
        let mut got = Vec::new();
        while let Some((k, _, p)) = scan.next() {
            got.push((crate::entry::decode_u64_key(&k).unwrap(), p));
        }
        assert_eq!(got, vec![(1, b"mem".to_vec()), (2, b"mem-override".to_vec())]);
    }

    #[test]
    fn crash_recovery_replays_wal() {
        let t = small_tree();
        t.insert(encode_u64_key(1), b"flushed".to_vec()).unwrap();
        t.flush().unwrap();
        t.insert(encode_u64_key(2), b"unflushed".to_vec()).unwrap();
        t.delete(encode_u64_key(1), Some(b"anti-schema".to_vec())).unwrap();
        t.simulate_crash();
        assert_eq!(t.get(&encode_u64_key(2)).unwrap(), None, "memtable lost");
        assert_eq!(t.get(&encode_u64_key(1)).unwrap(), Some(b"flushed".to_vec()));
        let (removed, replayed) = t.recover().unwrap();
        assert_eq!(removed, 0);
        assert_eq!(replayed, 2);
        assert_eq!(t.get(&encode_u64_key(2)).unwrap(), Some(b"unflushed".to_vec()));
        assert_eq!(t.get(&encode_u64_key(1)).unwrap(), None, "delete replayed");
    }

    #[test]
    fn crash_mid_flush_discards_invalid_component() {
        let t = small_tree();
        t.insert(encode_u64_key(1), b"a".to_vec()).unwrap();
        t.flush().unwrap(); // C0 valid
        t.insert(encode_u64_key(2), b"b".to_vec()).unwrap();
        t.flush_crashing_before_validity(); // C1 invalid, WAL intact
        assert_eq!(t.components().len(), 2);
        t.simulate_crash();
        let (removed, replayed) = t.recover().unwrap();
        assert_eq!(removed, 1, "invalid C1 removed");
        assert_eq!(replayed, 1, "WAL replays the lost insert");
        assert_eq!(t.get(&encode_u64_key(2)).unwrap(), Some(b"b".to_vec()));
        // Re-flush: the restored component becomes the new C1 (§3.1.2).
        t.flush().unwrap();
        assert_eq!(t.components().last().unwrap().id().to_string(), "C1");
    }

    #[test]
    fn torn_wal_tail_loses_only_last_op() {
        let t = small_tree();
        t.insert(encode_u64_key(1), b"a".to_vec()).unwrap();
        t.insert(encode_u64_key(2), b"b".to_vec()).unwrap();
        t.wal().tear_tail(3);
        t.simulate_crash();
        let (_, replayed) = t.recover().unwrap();
        assert_eq!(replayed, 1);
        assert_eq!(t.get(&encode_u64_key(1)).unwrap(), Some(b"a".to_vec()));
        assert_eq!(t.get(&encode_u64_key(2)).unwrap(), None);
    }

    #[test]
    fn merge_policy_fires_during_ingestion() {
        let t = tree(LsmOptions {
            page_size: 512,
            memtable_budget: 2 * 1024,
            merge_policy: MergePolicy::Prefix {
                max_mergeable_size: 1024 * 1024,
                max_tolerable_components: 3,
            },
            ..Default::default()
        });
        for i in 0..2000u64 {
            t.insert(encode_u64_key(i), vec![0u8; 64]).unwrap();
        }
        assert!(t.stats().merges > 0, "prefix policy should have merged");
        assert!(t.components().len() <= 4);
        assert_eq!(t.count(), 2000);
    }

    #[test]
    fn bulk_load_builds_single_component() {
        let t = small_tree();
        t.bulk_load((0..1000u64).map(|i| (encode_u64_key(i), format!("v{i}").into_bytes())))
            .unwrap();
        assert_eq!(t.components().len(), 1);
        assert_eq!(t.count(), 1000);
        assert_eq!(t.get(&encode_u64_key(500)).unwrap(), Some(b"v500".to_vec()));
    }

    #[test]
    fn metadata_propagates_through_merge() {
        struct BlobHook;
        impl ComponentHook for BlobHook {
            fn flush_metadata(&self) -> Option<Vec<u8>> {
                Some(b"schema".to_vec())
            }
        }
        let device = Arc::new(Device::new(DeviceProfile::RAM));
        let cache = Arc::new(BufferCache::new(64));
        let t = LsmTree::new(
            device,
            cache,
            Arc::new(BlobHook),
            LsmOptions { merge_policy: MergePolicy::NoMerge, ..Default::default() },
        );
        t.insert(encode_u64_key(1), b"a".to_vec()).unwrap();
        t.flush().unwrap();
        t.insert(encode_u64_key(2), b"b".to_vec()).unwrap();
        t.flush().unwrap();
        t.force_full_merge().unwrap();
        assert_eq!(t.newest_metadata(), Some(b"schema".to_vec()));
    }

    #[test]
    fn delete_versioned_attaches_only_for_observed_versions() {
        struct CountingHook(std::sync::atomic::AtomicU64);
        impl ComponentHook for CountingHook {
            fn on_flush_antimatter(&self, attachment: Option<&[u8]>) {
                if attachment.is_some() {
                    self.0.fetch_add(1, AtomicOrdering::Relaxed);
                }
            }
        }
        let hook = Arc::new(CountingHook(AtomicU64::new(0)));
        let device = Arc::new(Device::new(DeviceProfile::RAM));
        let cache = Arc::new(BufferCache::new(64));
        let t = LsmTree::new(
            device,
            cache,
            Arc::clone(&hook) as Arc<dyn ComponentHook>,
            LsmOptions { merge_policy: MergePolicy::NoMerge, ..Default::default() },
        );
        // Version still in the active memtable: never observed → the
        // attachment must be dropped.
        t.insert(encode_u64_key(1), b"v1".to_vec()).unwrap();
        t.delete_versioned(encode_u64_key(1), Some(b"anti".to_vec())).unwrap();
        t.flush().unwrap();
        assert_eq!(hook.0.load(AtomicOrdering::Relaxed), 0, "unobserved version: no decrement");
        // Version on disk: observed → the attachment reaches the hook.
        t.insert(encode_u64_key(2), b"v1".to_vec()).unwrap();
        t.flush().unwrap();
        t.delete_versioned(encode_u64_key(2), Some(b"anti".to_vec())).unwrap();
        t.flush().unwrap();
        assert_eq!(hook.0.load(AtomicOrdering::Relaxed), 1, "observed version: one decrement");
    }

    #[test]
    fn replay_strips_attachment_when_covering_flush_crashed() {
        // A delete decided "counted" because its old version sat in the
        // frozen memtable — but the covering flush crashed before the
        // validity bit, so the count never became durable. Recovery must
        // strip the (retroactively wrong) anti-schema so the hook never
        // decrements for a version that was never durably counted.
        struct CountingHook(AtomicU64);
        impl ComponentHook for CountingHook {
            fn on_flush_antimatter(&self, attachment: Option<&[u8]>) {
                if attachment.is_some() {
                    self.0.fetch_add(1, AtomicOrdering::Relaxed);
                }
            }
        }
        let hook = Arc::new(CountingHook(AtomicU64::new(0)));
        let t = LsmTree::new(
            Arc::new(Device::new(DeviceProfile::RAM)),
            Arc::new(BufferCache::new(64)),
            Arc::clone(&hook) as Arc<dyn ComponentHook>,
            LsmOptions { merge_policy: MergePolicy::NoMerge, ..Default::default() },
        );
        t.insert(encode_u64_key(1), b"v1".to_vec()).unwrap();
        t.flush_crashing_before_validity(); // v1's count never durable; WAL keeps its insert
        t.delete_versioned(encode_u64_key(1), Some(b"anti".to_vec())).unwrap(); // sees no active record → "counted"
        t.simulate_crash();
        let (removed, replayed) = t.recover().unwrap();
        assert_eq!(removed, 1);
        assert_eq!(replayed, 2, "insert + anti-matter both replay");
        t.flush().unwrap();
        assert_eq!(
            hook.0.load(AtomicOrdering::Relaxed),
            0,
            "the never-durably-counted version must not be decremented"
        );
        assert_eq!(t.get(&encode_u64_key(1)).unwrap(), None, "the delete itself still holds");
    }

    #[test]
    fn concurrent_readers_during_writes_and_flushes() {
        // Shared-reader smoke test at the tree level: one writer inserts
        // and flushes; readers continuously get/scan. Every observed state
        // must be a prefix-consistent snapshot (values match their keys; no
        // torn payloads; counts never exceed what was written).
        let t = Arc::new(tree(LsmOptions {
            page_size: 512,
            memtable_budget: 2 * 1024,
            merge_policy: MergePolicy::Prefix {
                max_mergeable_size: 1024 * 1024,
                max_tolerable_components: 3,
            },
            ..Default::default()
        }));
        const N: u64 = 1500;
        std::thread::scope(|scope| {
            let writer = Arc::clone(&t);
            scope.spawn(move || {
                for i in 0..N {
                    writer.insert(encode_u64_key(i), format!("payload-{i}").into_bytes()).unwrap();
                }
            });
            for _ in 0..3 {
                let reader = Arc::clone(&t);
                scope.spawn(move || {
                    for round in 0..40u64 {
                        // Point gets: value must always match its key.
                        for i in (0..N).step_by(97) {
                            if let Some(p) = reader.get(&encode_u64_key(i)).unwrap() {
                                assert_eq!(p, format!("payload-{i}").into_bytes());
                            }
                        }
                        // Scans: sorted unique keys, consistent payloads.
                        let mut scan = reader.scan();
                        let mut prev: Option<u64> = None;
                        let mut seen = 0u64;
                        while let Some((k, _, p)) = scan.next() {
                            let key = crate::entry::decode_u64_key(&k).unwrap();
                            if let Some(prev) = prev {
                                assert!(key > prev, "scan keys must ascend");
                            }
                            prev = Some(key);
                            assert_eq!(p, format!("payload-{key}").into_bytes());
                            seen += 1;
                        }
                        assert!(seen <= N);
                        let _ = round;
                    }
                });
            }
        });
        assert_eq!(t.count(), N);
    }

    #[test]
    fn flush_from_background_thread_keeps_readers_consistent() {
        let t = Arc::new(small_tree());
        for i in 0..300u64 {
            t.insert(encode_u64_key(i), format!("v{i}").into_bytes()).unwrap();
        }
        std::thread::scope(|scope| {
            let flusher = Arc::clone(&t);
            scope.spawn(move || {
                flusher.flush().unwrap();
                flusher.force_full_merge().unwrap();
            });
            let reader = Arc::clone(&t);
            scope.spawn(move || {
                for _ in 0..50 {
                    assert_eq!(reader.count(), 300, "no reader may see torn state");
                }
            });
        });
        assert_eq!(t.memtable_len(), 0);
        assert_eq!(t.count(), 300);
    }

    /// Two key-disjoint old components with a third, overlapping-with-
    /// neither component between them: build C0 on keys 0..10, C1 on
    /// 100..110, C2 on 200..210, then merge {C0, C2} skipping C1.
    #[test]
    fn non_contiguous_merge_of_disjoint_components() {
        let t = small_tree();
        for base in [0u64, 100, 200] {
            for i in base..base + 10 {
                t.insert(encode_u64_key(i), format!("v{i}").into_bytes()).unwrap();
            }
            t.flush().unwrap();
        }
        assert_eq!(t.components().len(), 3);
        t.merge_indices(&[0, 2]).unwrap();
        let comps = t.components();
        assert_eq!(comps.len(), 2);
        // The merged component took the newest input's slot.
        assert_eq!(comps[1].id().to_string(), "[C0,C2]");
        assert_eq!(comps[0].id().to_string(), "C1");
        for i in (0..210u64).filter(|i| i % 100 < 10) {
            assert_eq!(t.get(&encode_u64_key(i)).unwrap(), Some(format!("v{i}").into_bytes()));
        }
        assert_eq!(t.count(), 30);
        // Non-prefix pick: anti-matter GC was off (prove via the stats —
        // the merge rewrote exactly its inputs' entries).
        assert_eq!(t.stats().entries_merged, 20);
        assert_eq!(t.stats().merges_by_trigger[MergeTrigger::Manual as usize], 1);
    }

    /// A non-contiguous pick whose skipped component overlaps a picked
    /// older one would let stale versions win — the tree refuses it.
    #[test]
    #[should_panic(expected = "unsound non-contiguous pick")]
    fn non_contiguous_merge_rejects_overlapping_skip() {
        let t = small_tree();
        // C0: keys 0..10 (v-old), C1: keys 5..15 (newer versions of 5..10),
        // C2: keys 300..310.
        for i in 0..10u64 {
            t.insert(encode_u64_key(i), b"old".to_vec()).unwrap();
        }
        t.flush().unwrap();
        for i in 5..15u64 {
            t.insert(encode_u64_key(i), b"new".to_vec()).unwrap();
        }
        t.flush().unwrap();
        for i in 300..310u64 {
            t.insert(encode_u64_key(i), b"x".to_vec()).unwrap();
        }
        t.flush().unwrap();
        let _ = t.merge_indices(&[0, 2]);
    }

    #[test]
    fn fifo_policy_retires_oldest_components() {
        let t = tree(LsmOptions {
            page_size: 512,
            memtable_budget: 4 * 1024,
            merge_policy: MergePolicy::Fifo { max_components: 2, max_total_bytes: u64::MAX },
            ..Default::default()
        });
        for batch in 0..4u64 {
            for i in batch * 10..batch * 10 + 10 {
                t.insert(encode_u64_key(i), format!("v{i}").into_bytes()).unwrap();
            }
            t.flush().unwrap();
            t.maybe_merge().unwrap();
        }
        let stats = t.stats();
        assert_eq!(stats.merges, 0, "FIFO never merges");
        assert_eq!(t.components().len(), 2, "count cap enforced");
        assert_eq!(stats.components_retired, 2);
        assert_eq!(stats.entries_retired, 20);
        // The oldest batches are gone (lossy by design), the newest live.
        assert_eq!(t.get(&encode_u64_key(0)).unwrap(), None);
        assert_eq!(t.get(&encode_u64_key(15)).unwrap(), None);
        assert_eq!(t.get(&encode_u64_key(25)).unwrap(), Some(b"v25".to_vec()));
        assert_eq!(t.get(&encode_u64_key(39)).unwrap(), Some(b"v39".to_vec()));
    }

    #[test]
    fn write_amplification_accounts_flushes_and_merges() {
        let t = tree(LsmOptions {
            page_size: 512,
            memtable_budget: 4 * 1024,
            merge_policy: MergePolicy::Constant { max_components: 2 },
            ..Default::default()
        });
        for i in 0..300u64 {
            t.insert(encode_u64_key(i), format!("payload-{i}").into_bytes()).unwrap();
        }
        t.flush().unwrap();
        t.maybe_merge().unwrap();
        let stats = t.stats();
        assert!(stats.flushes > 0 && stats.merges > 0);
        assert!(stats.bytes_flushed > 0, "every flush adds to the denominator");
        assert!(stats.bytes_merged > 0, "every merge adds to the numerator");
        assert!(stats.write_amplification() > 1.0);
        let triggered: u64 = stats.merges_by_trigger.iter().sum();
        assert_eq!(triggered, stats.merges, "every merge is attributed to a trigger");
        // NoMerge baseline: amplification is exactly 1.
        let t = small_tree();
        for i in 0..100u64 {
            t.insert(encode_u64_key(i), b"x".to_vec()).unwrap();
        }
        t.flush().unwrap();
        let stats = t.stats();
        assert_eq!(stats.bytes_merged, 0);
        assert!((stats.write_amplification() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn level_counts_follow_the_policy_assignment() {
        let t = tree(LsmOptions {
            page_size: 512,
            memtable_budget: 4 * 1024,
            merge_policy: MergePolicy::Leveled {
                level0_components: 8,
                base_bytes: 2 * 1024,
                fanout: 4,
            },
            ..Default::default()
        });
        assert!(t.level_counts().is_empty(), "no components, no levels");
        for batch in 0..3u64 {
            for i in batch * 5..batch * 5 + 5 {
                t.insert(encode_u64_key(i), vec![b'x'; 100]).unwrap();
            }
            t.flush().unwrap();
        }
        let counts = t.level_counts();
        assert_eq!(counts.iter().sum::<u64>(), t.components().len() as u64);
    }
}
