//! The LSM tree: in-memory component + on-disk components + WAL, with the
//! flush/merge lifecycle the tuple compactor piggybacks on (paper §2.2,
//! §3.1).

use std::sync::Arc;

use tc_compress::CompressionScheme;
use tc_storage::device::Device;
use tc_storage::BufferCache;

use crate::component::{ComponentBuilder, ComponentId, DiskComponent};
use crate::entry::{EntryKind, Key};
use crate::hook::ComponentHook;
use crate::iter::MergedScan;
use crate::memtable::{MemEntry, Memtable};
use crate::policy::MergePolicy;
use crate::wal::Wal;

/// Per-tree configuration.
#[derive(Debug, Clone)]
pub struct LsmOptions {
    pub page_size: usize,
    pub compression: CompressionScheme,
    /// In-memory component budget in bytes; exceeding it triggers a flush.
    pub memtable_budget: usize,
    pub merge_policy: MergePolicy,
    pub bloom_bits_per_key: usize,
    /// Disable to model bulk-load (no transaction log, §4.3).
    pub wal_enabled: bool,
}

impl Default for LsmOptions {
    fn default() -> Self {
        LsmOptions {
            page_size: 32 * 1024,
            compression: CompressionScheme::None,
            memtable_budget: 4 * 1024 * 1024,
            merge_policy: MergePolicy::Prefix {
                max_mergeable_size: 64 * 1024 * 1024,
                max_tolerable_components: 5,
            },
            bloom_bits_per_key: 10,
            wal_enabled: true,
        }
    }
}

/// Where a point lookup found its entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupSource {
    /// The in-memory component — this version has not been flushed (and,
    /// for inferred datasets, not observed by the schema).
    Memtable,
    /// An on-disk component — this version was counted at its flush.
    Disk,
}

/// Lifecycle statistics (ingestion experiments report these).
#[derive(Debug, Clone, Copy, Default)]
pub struct LsmStats {
    pub flushes: u64,
    pub merges: u64,
    pub entries_flushed: u64,
    pub entries_merged: u64,
}

/// A single-partition LSM tree. Not internally synchronized — each data
/// partition owns one tree and runs its operations serially (the paper's
/// partitions are independent; cross-partition parallelism lives above).
pub struct LsmTree {
    opts: LsmOptions,
    device: Arc<Device>,
    cache: Arc<BufferCache>,
    hook: Arc<dyn ComponentHook>,
    mem: Memtable,
    /// Oldest → newest.
    disk: Vec<Arc<DiskComponent>>,
    wal: Wal,
    next_seq: u64,
    stats: LsmStats,
    /// Anti-schema attachments whose anti-matter entries were displaced by
    /// newer same-key writes in the memtable. Their *old, flushed* record
    /// versions were counted by earlier flushes, so the next flush must
    /// still hand them to the hook (§3.2.2 upsert path).
    pending_anti: Vec<Vec<u8>>,
}

impl LsmTree {
    pub fn new(
        device: Arc<Device>,
        cache: Arc<BufferCache>,
        hook: Arc<dyn ComponentHook>,
        opts: LsmOptions,
    ) -> Self {
        let wal = Wal::new(Arc::clone(&device));
        LsmTree {
            opts,
            device,
            cache,
            hook,
            mem: Memtable::new(),
            disk: Vec::new(),
            wal,
            next_seq: 0,
            stats: LsmStats::default(),
            pending_anti: Vec::new(),
        }
    }

    /// Apply an entry to the memtable, preserving any displaced
    /// anti-schema attachment.
    fn apply(&mut self, key: Key, entry: MemEntry) {
        if let Some(MemEntry::AntiMatter(Some(att))) = self.mem.put(key, entry) {
            self.pending_anti.push(att);
        }
    }

    pub fn options(&self) -> &LsmOptions {
        &self.opts
    }

    pub fn stats(&self) -> LsmStats {
        self.stats
    }

    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    pub fn cache(&self) -> &Arc<BufferCache> {
        &self.cache
    }

    pub fn components(&self) -> &[Arc<DiskComponent>] {
        &self.disk
    }

    pub fn memtable_len(&self) -> usize {
        self.mem.len()
    }

    /// Total on-disk footprint across components.
    pub fn disk_bytes(&self) -> u64 {
        self.disk.iter().map(|c| c.disk_bytes()).sum()
    }

    /// Total live records (scan-count; O(n)).
    pub fn count(&self) -> u64 {
        let mut scan = self.scan();
        let mut n = 0;
        while scan.next().is_some() {
            n += 1;
        }
        n
    }

    // -----------------------------------------------------------------
    // Writes
    // -----------------------------------------------------------------

    /// Insert (or overwrite) a record.
    pub fn insert(&mut self, key: Key, payload: Vec<u8>) {
        let entry = MemEntry::Record(payload);
        if self.opts.wal_enabled {
            self.wal.log(&key, &entry);
        }
        self.apply(key, entry);
        self.maybe_flush();
    }

    /// Delete by key: inserts an anti-matter entry. `attachment` is the
    /// hook payload (the anti-schema, §3.2.2), processed and discarded at
    /// flush.
    pub fn delete(&mut self, key: Key, attachment: Option<Vec<u8>>) {
        let entry = MemEntry::AntiMatter(attachment);
        if self.opts.wal_enabled {
            self.wal.log(&key, &entry);
        }
        self.apply(key, entry);
        self.maybe_flush();
    }

    fn maybe_flush(&mut self) {
        if self.mem.bytes() >= self.opts.memtable_budget {
            self.flush();
            self.maybe_merge();
        }
    }

    /// Flush the in-memory component to a new on-disk component, running
    /// every record through the hook (where the tuple compactor infers and
    /// compacts — §3.1.1).
    pub fn flush(&mut self) {
        if self.mem.is_empty() {
            return;
        }
        self.flush_inner(true);
    }

    /// Failure injection: perform a flush but "crash" before the validity
    /// bit is set (and before the WAL is truncated). The in-memory component
    /// is lost, exactly as in a real crash (§3.1.2).
    pub fn flush_crashing_before_validity(&mut self) {
        if self.mem.is_empty() {
            return;
        }
        self.flush_inner(false);
    }

    fn flush_inner(&mut self, complete: bool) {
        let entries = self.mem.take();
        // Anti-schemas displaced by in-memory overwrites still decrement
        // the schema for their flushed old versions.
        for att in self.pending_anti.drain(..) {
            self.hook.on_flush_antimatter(Some(&att));
        }
        let mut builder = ComponentBuilder::new(
            Arc::clone(&self.device),
            self.opts.page_size,
            self.opts.compression,
            entries.len(),
            self.opts.bloom_bits_per_key,
        );
        let mut count = 0u64;
        for (key, entry) in &entries {
            match entry {
                MemEntry::Record(payload) => {
                    let transformed = self.hook.on_flush_record(payload);
                    builder.push(key, EntryKind::Record, &transformed);
                }
                MemEntry::AntiMatter(att) => {
                    self.hook.on_flush_antimatter(att.as_deref());
                    builder.push(key, EntryKind::AntiMatter, &[]);
                }
            }
            count += 1;
        }
        let id = ComponentId::flushed(self.next_seq);
        self.next_seq += 1;
        let metadata = self.hook.flush_metadata();
        let component = builder.finish(id, metadata, false);
        if complete {
            component.set_valid();
            self.disk.push(Arc::new(component));
            if self.opts.wal_enabled {
                self.wal.reset();
            }
            self.stats.flushes += 1;
            self.stats.entries_flushed += count;
        } else {
            // Crash: the invalid component is on disk; the WAL survives;
            // the in-memory component is gone.
            self.disk.push(Arc::new(component));
        }
    }

    /// Run the merge policy; merge at most once.
    pub fn maybe_merge(&mut self) {
        if let Some(range) = self.opts.merge_policy.decide(&self.disk) {
            self.merge(range);
        }
    }

    /// Merge all on-disk components into one (bench/maintenance helper).
    pub fn force_full_merge(&mut self) {
        if self.disk.len() >= 2 {
            self.merge(0..self.disk.len());
        }
    }

    /// Merge the adjacent component range (oldest..newest indexes).
    /// Annihilated records are garbage-collected; anti-matter survives only
    /// if older components remain outside the merge (§2.2). The merged
    /// component's metadata is chosen by the hook — the paper's rule keeps
    /// the newest schema without touching in-memory state (§3.1.1).
    pub fn merge(&mut self, range: std::ops::Range<usize>) {
        assert!(range.end <= self.disk.len() && range.len() >= 2, "bad merge range");
        let includes_oldest = range.start == 0;
        let inputs = &self.disk[range.clone()];
        let blobs: Vec<Option<&[u8]>> = inputs.iter().map(|c| c.metadata()).collect();
        let metadata = self.hook.merge_metadata(&blobs);
        let expected: usize = inputs.iter().map(|c| c.num_entries() as usize).sum();

        let mut builder = ComponentBuilder::new(
            Arc::clone(&self.device),
            self.opts.page_size,
            self.opts.compression,
            expected,
            self.opts.bloom_bits_per_key,
        );
        let mut count = 0u64;
        {
            let mut scan = MergedScan::new(None, inputs, &self.cache, None, None, true);
            while let Some((key, kind, payload)) = scan.next() {
                match kind {
                    EntryKind::AntiMatter if includes_oldest => continue,
                    kind => {
                        builder.push(&key, kind, &payload);
                        count += 1;
                    }
                }
            }
        }
        let id = ComponentId::merged(inputs[0].id(), inputs[range.len() - 1].id());
        let merged = builder.finish(id, metadata, false);
        merged.set_valid();
        // Swap in the merged component; old ones become garbage (deleted
        // after the merge completes, §2.2).
        self.disk.splice(range, [Arc::new(merged)]);
        self.stats.merges += 1;
        self.stats.entries_merged += count;
    }

    /// Bulk-load a pre-sorted stream into a single component (paper §4.3:
    /// loading sorts records and builds one B+-tree bottom-up; the tuple
    /// compactor infers and compacts during the build). The tree must be
    /// empty.
    pub fn bulk_load<I>(&mut self, sorted: I)
    where
        I: IntoIterator<Item = (Key, Vec<u8>)>,
    {
        assert!(self.disk.is_empty() && self.mem.is_empty(), "bulk_load requires an empty tree");
        let mut builder = ComponentBuilder::new(
            Arc::clone(&self.device),
            self.opts.page_size,
            self.opts.compression,
            1024,
            self.opts.bloom_bits_per_key,
        );
        let mut count = 0u64;
        for (key, payload) in sorted {
            let transformed = self.hook.on_flush_record(&payload);
            builder.push(&key, EntryKind::Record, &transformed);
            count += 1;
        }
        let id = ComponentId::flushed(self.next_seq);
        self.next_seq += 1;
        let component = builder.finish(id, self.hook.flush_metadata(), false);
        component.set_valid();
        self.disk.push(Arc::new(component));
        self.stats.flushes += 1;
        self.stats.entries_flushed += count;
    }

    // -----------------------------------------------------------------
    // Reads
    // -----------------------------------------------------------------

    /// Point lookup returning the entry kind (deleted keys report their
    /// anti-matter).
    pub fn get_entry(&self, key: &[u8]) -> Option<(EntryKind, Vec<u8>)> {
        self.get_entry_with_source(key).map(|(k, p, _)| (k, p))
    }

    /// Point lookup that also reports *where* the entry was found. The
    /// tuple compactor needs this: only versions that reached disk were
    /// counted by a flush, so only those get anti-schemas on delete/upsert
    /// (§3.2.2); an in-memory version was never observed.
    pub fn get_entry_with_source(&self, key: &[u8]) -> Option<(EntryKind, Vec<u8>, LookupSource)> {
        if let Some(entry) = self.mem.get(key) {
            return Some(match entry {
                MemEntry::Record(p) => (EntryKind::Record, p.clone(), LookupSource::Memtable),
                MemEntry::AntiMatter(_) => {
                    (EntryKind::AntiMatter, Vec::new(), LookupSource::Memtable)
                }
            });
        }
        for c in self.disk.iter().rev() {
            if let Some((kind, payload)) = c.get(&self.cache, key) {
                return Some((kind, payload, LookupSource::Disk));
            }
        }
        None
    }

    /// Point lookup for a live record.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        match self.get_entry(key)? {
            (EntryKind::Record, p) => Some(p),
            (EntryKind::AntiMatter, _) => None,
        }
    }

    /// Does the key exist (live)? Used by the primary-key index fast path.
    pub fn contains(&self, key: &[u8]) -> bool {
        matches!(self.get_entry(key), Some((EntryKind::Record, _)))
    }

    /// Full scan of live records.
    pub fn scan(&self) -> MergedScan<'_> {
        MergedScan::new(Some(&self.mem), &self.disk, &self.cache, None, None, false)
    }

    /// Range scan of live records, `start` inclusive, `end` exclusive.
    pub fn scan_range(&self, start: Option<&[u8]>, end: Option<&[u8]>) -> MergedScan<'_> {
        MergedScan::new(Some(&self.mem), &self.disk, &self.cache, start, end, false)
    }

    // -----------------------------------------------------------------
    // Crash & recovery (§3.1.2)
    // -----------------------------------------------------------------

    /// Simulate a process crash: the in-memory component vanishes; disk
    /// components and the WAL survive as they are.
    pub fn simulate_crash(&mut self) {
        self.mem = Memtable::new();
        self.pending_anti.clear();
    }

    /// Recovery: discard invalid components (unset validity bit), then
    /// replay the WAL into a fresh in-memory component. Returns the number
    /// of (removed_components, replayed_operations). After recovery the
    /// caller may flush normally — the compactor hook "operates normally"
    /// on the restored component (§3.1.2).
    pub fn recover(&mut self) -> (usize, usize) {
        let before = self.disk.len();
        self.disk.retain(|c| c.is_valid());
        let removed = before - self.disk.len();
        // Reset the sequence to follow the newest surviving component.
        self.next_seq = self.disk.last().map(|c| c.id().max + 1).unwrap_or(0);
        let ops = self.wal.replay();
        let replayed = ops.len();
        for (key, entry) in ops {
            // Same displacement rule as live writes, so replayed upserts
            // rebuild the pending anti-schema list too.
            self.apply(key, entry);
        }
        (removed, replayed)
    }

    /// The newest component's metadata blob (the schema the recovery
    /// manager reloads, §3.1.2).
    pub fn newest_metadata(&self) -> Option<Vec<u8>> {
        self.disk.iter().rev().find_map(|c| c.metadata().map(<[u8]>::to_vec))
    }

    /// Test/benchmark access to the WAL.
    pub fn wal(&self) -> &Wal {
        &self.wal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::encode_u64_key;
    use crate::hook::NoopHook;
    use tc_storage::device::DeviceProfile;

    fn tree(opts: LsmOptions) -> LsmTree {
        let device = Arc::new(Device::new(DeviceProfile::RAM));
        let cache = Arc::new(BufferCache::new(1024));
        LsmTree::new(device, cache, Arc::new(NoopHook), opts)
    }

    fn small_tree() -> LsmTree {
        tree(LsmOptions {
            page_size: 512,
            memtable_budget: 4 * 1024,
            merge_policy: MergePolicy::NoMerge,
            ..Default::default()
        })
    }

    #[test]
    fn insert_get_across_flushes() {
        let mut t = small_tree();
        for i in 0..200u64 {
            t.insert(encode_u64_key(i), format!("v{i}").into_bytes());
        }
        assert!(t.stats().flushes > 0, "budget should have forced flushes");
        for i in (0..200u64).step_by(17) {
            assert_eq!(t.get(&encode_u64_key(i)), Some(format!("v{i}").into_bytes()));
        }
        assert_eq!(t.get(&encode_u64_key(999)), None);
        assert_eq!(t.count(), 200);
    }

    #[test]
    fn delete_hides_record_across_components() {
        let mut t = small_tree();
        t.insert(encode_u64_key(1), b"one".to_vec());
        t.flush();
        t.delete(encode_u64_key(1), None);
        assert_eq!(t.get(&encode_u64_key(1)), None);
        t.flush();
        assert_eq!(t.get(&encode_u64_key(1)), None);
        assert_eq!(t.count(), 0);
    }

    #[test]
    fn merge_annihilates_and_garbage_collects() {
        let mut t = small_tree();
        t.insert(encode_u64_key(0), b"Kim".to_vec());
        t.insert(encode_u64_key(1), b"John".to_vec());
        t.flush(); // C0
        t.delete(encode_u64_key(0), None);
        t.insert(encode_u64_key(2), b"Bob".to_vec());
        t.flush(); // C1
        assert_eq!(t.components().len(), 2);
        t.force_full_merge();
        assert_eq!(t.components().len(), 1);
        let merged = &t.components()[0];
        assert_eq!(merged.id().to_string(), "[C0,C1]");
        // Kim and the anti-matter annihilated: 2 live entries, 0 anti.
        assert_eq!(merged.num_entries(), 2);
        assert_eq!(merged.num_antimatter(), 0);
        assert_eq!(t.get(&encode_u64_key(0)), None);
        assert_eq!(t.get(&encode_u64_key(1)), Some(b"John".to_vec()));
    }

    #[test]
    fn partial_merge_preserves_antimatter() {
        let mut t = small_tree();
        t.insert(encode_u64_key(7), b"v".to_vec());
        t.flush(); // C0 holds the record
        t.delete(encode_u64_key(7), None);
        t.flush(); // C1 holds anti-matter
        t.insert(encode_u64_key(8), b"w".to_vec());
        t.flush(); // C2

        // Merge C1..C2 only: the anti-matter must survive, because C0 still
        // holds the record it kills.
        t.merge(1..3);
        assert_eq!(t.components().len(), 2);
        assert_eq!(t.components()[1].num_antimatter(), 1);
        assert_eq!(t.get(&encode_u64_key(7)), None, "record must stay dead");
    }

    #[test]
    fn upsert_last_write_wins() {
        let mut t = small_tree();
        t.insert(encode_u64_key(5), b"a".to_vec());
        t.flush();
        t.delete(encode_u64_key(5), None);
        t.insert(encode_u64_key(5), b"b".to_vec());
        assert_eq!(t.get(&encode_u64_key(5)), Some(b"b".to_vec()));
        t.flush();
        t.force_full_merge();
        assert_eq!(t.get(&encode_u64_key(5)), Some(b"b".to_vec()));
        assert_eq!(t.count(), 1);
    }

    #[test]
    fn scan_merges_mem_and_disk() {
        let mut t = small_tree();
        t.insert(encode_u64_key(2), b"disk".to_vec());
        t.flush();
        t.insert(encode_u64_key(1), b"mem".to_vec());
        t.insert(encode_u64_key(2), b"mem-override".to_vec());
        let mut scan = t.scan();
        let mut got = Vec::new();
        while let Some((k, _, p)) = scan.next() {
            got.push((crate::entry::decode_u64_key(&k).unwrap(), p));
        }
        assert_eq!(got, vec![(1, b"mem".to_vec()), (2, b"mem-override".to_vec())]);
    }

    #[test]
    fn crash_recovery_replays_wal() {
        let mut t = small_tree();
        t.insert(encode_u64_key(1), b"flushed".to_vec());
        t.flush();
        t.insert(encode_u64_key(2), b"unflushed".to_vec());
        t.delete(encode_u64_key(1), Some(b"anti-schema".to_vec()));
        t.simulate_crash();
        assert_eq!(t.get(&encode_u64_key(2)), None, "memtable lost");
        assert_eq!(t.get(&encode_u64_key(1)), Some(b"flushed".to_vec()));
        let (removed, replayed) = t.recover();
        assert_eq!(removed, 0);
        assert_eq!(replayed, 2);
        assert_eq!(t.get(&encode_u64_key(2)), Some(b"unflushed".to_vec()));
        assert_eq!(t.get(&encode_u64_key(1)), None, "delete replayed");
    }

    #[test]
    fn crash_mid_flush_discards_invalid_component() {
        let mut t = small_tree();
        t.insert(encode_u64_key(1), b"a".to_vec());
        t.flush(); // C0 valid
        t.insert(encode_u64_key(2), b"b".to_vec());
        t.flush_crashing_before_validity(); // C1 invalid, WAL intact
        assert_eq!(t.components().len(), 2);
        t.simulate_crash();
        let (removed, replayed) = t.recover();
        assert_eq!(removed, 1, "invalid C1 removed");
        assert_eq!(replayed, 1, "WAL replays the lost insert");
        assert_eq!(t.get(&encode_u64_key(2)), Some(b"b".to_vec()));
        // Re-flush: the restored component becomes the new C1 (§3.1.2).
        t.flush();
        assert_eq!(t.components().last().unwrap().id().to_string(), "C1");
    }

    #[test]
    fn torn_wal_tail_loses_only_last_op() {
        let mut t = small_tree();
        t.insert(encode_u64_key(1), b"a".to_vec());
        t.insert(encode_u64_key(2), b"b".to_vec());
        t.wal().tear_tail(3);
        t.simulate_crash();
        let (_, replayed) = t.recover();
        assert_eq!(replayed, 1);
        assert_eq!(t.get(&encode_u64_key(1)), Some(b"a".to_vec()));
        assert_eq!(t.get(&encode_u64_key(2)), None);
    }

    #[test]
    fn merge_policy_fires_during_ingestion() {
        let mut t = tree(LsmOptions {
            page_size: 512,
            memtable_budget: 2 * 1024,
            merge_policy: MergePolicy::Prefix {
                max_mergeable_size: 1024 * 1024,
                max_tolerable_components: 3,
            },
            ..Default::default()
        });
        for i in 0..2000u64 {
            t.insert(encode_u64_key(i), vec![0u8; 64]);
        }
        assert!(t.stats().merges > 0, "prefix policy should have merged");
        assert!(t.components().len() <= 4);
        assert_eq!(t.count(), 2000);
    }

    #[test]
    fn bulk_load_builds_single_component() {
        let mut t = small_tree();
        t.bulk_load((0..1000u64).map(|i| (encode_u64_key(i), format!("v{i}").into_bytes())));
        assert_eq!(t.components().len(), 1);
        assert_eq!(t.count(), 1000);
        assert_eq!(t.get(&encode_u64_key(500)), Some(b"v500".to_vec()));
    }

    #[test]
    fn metadata_propagates_through_merge() {
        struct BlobHook;
        impl ComponentHook for BlobHook {
            fn flush_metadata(&self) -> Option<Vec<u8>> {
                Some(b"schema".to_vec())
            }
        }
        let device = Arc::new(Device::new(DeviceProfile::RAM));
        let cache = Arc::new(BufferCache::new(64));
        let mut t = LsmTree::new(
            device,
            cache,
            Arc::new(BlobHook),
            LsmOptions { merge_policy: MergePolicy::NoMerge, ..Default::default() },
        );
        t.insert(encode_u64_key(1), b"a".to_vec());
        t.flush();
        t.insert(encode_u64_key(2), b"b".to_vec());
        t.flush();
        t.force_full_merge();
        assert_eq!(t.newest_metadata(), Some(b"schema".to_vec()));
    }
}
