//! Immutable on-disk components (paper §2.2).
//!
//! A component is a bottom-up-built B+-tree: sorted entries packed into
//! page-sized leaf blocks, an index of (first key → block) over them, a
//! bloom filter on keys, and a metadata page holding the validity bit, the
//! component id, and the hook's metadata blob (the tuple compactor's
//! persisted schema, §3.1). Index, bloom, and metadata are written to the
//! same page store after the leaves, so on-disk size accounting includes
//! them, as a real B+-tree's interior nodes would.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use tc_compress::CompressionScheme;
use tc_storage::device::Device;
use tc_storage::error::StorageError;
use tc_storage::page_store::{PageStore, PageWriter};
use tc_storage::BufferCache;
use tc_util::varint;

use crate::bloom::BloomFilter;
use crate::columnar::{ColumnarChunk, ColumnarCodec};
use crate::entry::{read_entry, write_entry, EntryKind, Key};

/// Component identity: flushed components get `(n, n)`; a merge of
/// `[Ci..Cj]` gets `(i, j)`. Recency order is by `max` (paper §2.2:
/// AsterixDB infers recency from component ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ComponentId {
    pub min: u64,
    pub max: u64,
}

impl ComponentId {
    pub fn flushed(seq: u64) -> Self {
        ComponentId { min: seq, max: seq }
    }

    pub fn merged(oldest: ComponentId, newest: ComponentId) -> Self {
        ComponentId { min: oldest.min, max: newest.max }
    }
}

impl std::fmt::Display for ComponentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.min == self.max {
            write!(f, "C{}", self.min)
        } else {
            write!(f, "[C{},C{}]", self.min, self.max)
        }
    }
}

/// Index entry: where a leaf block lives.
#[derive(Debug, Clone)]
struct BlockRef {
    first_key: Key,
    start_page: u64,
    byte_len: u32,
}

/// How a component's entries are laid out on its page store.
#[derive(Debug)]
enum Body {
    /// Row blocks: sorted entries packed into page-sized leaf blocks with a
    /// (first key → block) index — the original layout.
    Rows(Vec<BlockRef>),
    /// Column pages: the AMAX layout, built and read through the pluggable
    /// [`ColumnarChunk`]. Keys stay sorted across row groups, so scans and
    /// point lookups position exactly like row blocks.
    Columnar(Box<dyn ColumnarChunk>),
}

/// An immutable on-disk component.
#[derive(Debug)]
pub struct DiskComponent {
    id: ComponentId,
    store: PageStore,
    body: Body,
    bloom: BloomFilter,
    /// Hook metadata blob (the persisted schema for inferred datasets).
    metadata: Option<Vec<u8>>,
    /// Largest key in the component (None if empty).
    max_key: Option<Key>,
    /// The validity bit (paper §2.2): set only after the flush/merge that
    /// produced this component completed. Recovery removes invalid
    /// components.
    valid: AtomicBool,
    /// Set once a read detected corruption in this component (a failed page
    /// checksum or an undecodable block). Quarantined components are
    /// immutable and stay on disk, but queries either skip them (degrade
    /// policy) or fail with a typed error — they are never silently decoded.
    quarantined: AtomicBool,
    num_entries: u64,
    num_antimatter: u64,
}

impl DiskComponent {
    pub fn id(&self) -> ComponentId {
        self.id
    }

    pub fn is_valid(&self) -> bool {
        self.valid.load(Ordering::Acquire)
    }

    /// Set the validity bit (the final step of flush/merge).
    pub fn set_valid(&self) {
        self.valid.store(true, Ordering::Release);
    }

    pub fn is_quarantined(&self) -> bool {
        self.quarantined.load(Ordering::Acquire)
    }

    /// Mark the component as corrupt. Idempotent; called by any reader that
    /// hits a checksum failure or undecodable block inside it.
    pub fn quarantine(&self) {
        self.quarantined.store(true, Ordering::Release);
    }

    pub fn metadata(&self) -> Option<&[u8]> {
        self.metadata.as_deref()
    }

    pub fn num_entries(&self) -> u64 {
        self.num_entries
    }

    pub fn num_antimatter(&self) -> u64 {
        self.num_antimatter
    }

    /// Total on-disk footprint (leaves + index + bloom + metadata + LAF).
    pub fn disk_bytes(&self) -> u64 {
        self.store.total_bytes()
    }

    pub fn min_key(&self) -> Option<&[u8]> {
        match &self.body {
            Body::Rows(index) => index.first().map(|b| b.first_key.as_slice()),
            Body::Columnar(chunk) => (chunk.num_groups() > 0).then(|| chunk.group_first_key(0)),
        }
    }

    /// Is this component stored in the columnar (AMAX) layout?
    pub fn is_columnar(&self) -> bool {
        matches!(self.body, Body::Columnar(_))
    }

    /// Format-aware access to the columnar body (chunk + its page store) for
    /// readers that want typed, column-pruned scans instead of row
    /// reconstruction. `None` for row-format components.
    pub fn columnar_view(&self) -> Option<(&dyn ColumnarChunk, &PageStore)> {
        match &self.body {
            Body::Rows(_) => None,
            Body::Columnar(chunk) => Some((chunk.as_ref(), &self.store)),
        }
    }

    pub fn max_key(&self) -> Option<&[u8]> {
        self.max_key.as_deref()
    }

    /// Key-range filter (the LSM-filter idea of [17], cited in §5): can this
    /// component contain keys in `[start, end)`? Scans skip components whose
    /// range doesn't intersect — e.g. old components during a
    /// recent-timestamp secondary range scan.
    pub fn overlaps(&self, start: Option<&[u8]>, end: Option<&[u8]>) -> bool {
        let (Some(min), Some(max)) = (self.min_key(), self.max_key()) else {
            return false; // empty component
        };
        if let Some(end) = end {
            if min >= end {
                return false;
            }
        }
        if let Some(start) = start {
            if max < start {
                return false;
            }
        }
        true
    }

    /// Point lookup through the bloom filter and block index. A checksum
    /// failure or undecodable block quarantines the component and surfaces
    /// as a typed error — never as a silent miss or garbage payload.
    pub fn get(
        &self,
        cache: &BufferCache,
        key: &[u8],
    ) -> Result<Option<(EntryKind, Vec<u8>)>, StorageError> {
        if !self.bloom.contains(key) {
            return Ok(None);
        }
        match &self.body {
            Body::Rows(index) => {
                if index.is_empty() {
                    return Ok(None);
                }
                // Last block whose first_key <= key.
                let idx = match index.binary_search_by(|b| b.first_key.as_slice().cmp(key)) {
                    Ok(i) => i,
                    Err(0) => return Ok(None),
                    Err(i) => i - 1,
                };
                let block = self.read_block(cache, &index[idx])?;
                let mut pos = 0usize;
                while pos < block.len() {
                    let Some((k, kind, payload, n)) = read_entry(&block[pos..]) else {
                        return Err(self.corrupt_block(idx));
                    };
                    match k.cmp(key) {
                        std::cmp::Ordering::Equal => return Ok(Some((kind, payload.to_vec()))),
                        std::cmp::Ordering::Greater => return Ok(None),
                        std::cmp::Ordering::Less => pos += n,
                    }
                }
                Ok(None)
            }
            Body::Columnar(chunk) => {
                // Last group whose first_key <= key, then a linear probe of
                // the reconstructed group (point lookups pay the columnar
                // tax; analytics scans are what the layout is for).
                let Some(g) = columnar_group_for(chunk.as_ref(), key) else {
                    return Ok(None);
                };
                let rows = self.read_group(cache, chunk.as_ref(), g)?;
                for (k, kind, payload) in rows {
                    match k.as_slice().cmp(key) {
                        std::cmp::Ordering::Equal => return Ok(Some((kind, payload))),
                        std::cmp::Ordering::Greater => return Ok(None),
                        std::cmp::Ordering::Less => {}
                    }
                }
                Ok(None)
            }
        }
    }

    /// Reconstruct one columnar row group, quarantining on corruption (the
    /// same policy `read_block` applies to row blocks).
    #[allow(clippy::type_complexity)]
    fn read_group(
        &self,
        cache: &BufferCache,
        chunk: &dyn ColumnarChunk,
        g: usize,
    ) -> Result<Vec<Entry>, StorageError> {
        chunk.read_group_rows(&self.store, cache, g).inspect_err(|e| {
            if e.is_corruption() {
                self.quarantine();
            }
        })
    }

    /// Build the typed error for an undecodable block and quarantine the
    /// component (the page checksum passed, so this is a writer-side bug or
    /// in-memory damage — either way the component can't be trusted).
    fn corrupt_block(&self, block_idx: usize) -> StorageError {
        self.quarantine();
        StorageError::corruption(
            "component block",
            format!("undecodable entry in block {block_idx} of component {}", self.id),
        )
    }

    fn read_block(&self, cache: &BufferCache, block: &BlockRef) -> Result<Vec<u8>, StorageError> {
        let page_size = self.store.page_size();
        let num_pages = (block.byte_len as usize).div_ceil(page_size);
        let mut out = Vec::with_capacity(block.byte_len as usize);
        for p in 0..num_pages {
            let page = cache.read(&self.store, block.start_page + p as u64).inspect_err(|e| {
                if e.is_corruption() {
                    self.quarantine();
                }
            })?;
            let take = (block.byte_len as usize - out.len()).min(page_size);
            out.extend_from_slice(&page[..take]);
        }
        Ok(out)
    }

    /// Iterate entries in key order, starting at the first key ≥ `start`
    /// (or from the beginning). The scan *owns* its component and cache
    /// handles, so it stays valid while concurrent flushes/merges replace
    /// the tree's component list — the merged-out component is simply kept
    /// alive by this scan's `Arc` until it finishes (snapshot semantics).
    pub fn scan(self: &Arc<Self>, cache: &Arc<BufferCache>, start: Option<&[u8]>) -> ComponentScan {
        let body = match &self.body {
            Body::Rows(index) => {
                let block_idx = match start {
                    None => 0,
                    Some(key) => {
                        match index.binary_search_by(|b| b.first_key.as_slice().cmp(key)) {
                            Ok(i) => i,
                            Err(0) => 0,
                            Err(i) => i - 1,
                        }
                    }
                };
                ScanBody::Rows { block_idx, block: Vec::new(), pos: 0, loaded: false }
            }
            Body::Columnar(chunk) => {
                let group_idx = match start {
                    None => 0,
                    Some(key) => columnar_group_for(chunk.as_ref(), key).unwrap_or(0),
                };
                ScanBody::Columnar { group_idx, rows: Vec::new().into_iter() }
            }
        };
        ComponentScan {
            component: Arc::clone(self),
            cache: Arc::clone(cache),
            body,
            failed: false,
            skip_until: start.map(|s| s.to_vec()),
        }
    }
}

/// Last group whose first key is ≤ `key` (where a matching key must live),
/// or `None` if the component is empty or `key` precedes every group.
fn columnar_group_for(chunk: &dyn ColumnarChunk, key: &[u8]) -> Option<usize> {
    let n = chunk.num_groups();
    if n == 0 || chunk.group_first_key(0) > key {
        return None;
    }
    // Binary search: invariant first_key(lo) <= key < first_key(hi).
    let (mut lo, mut hi) = (0usize, n);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if chunk.group_first_key(mid) <= key {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// One scanned entry: `(key, kind, payload)`, or the corruption error that
/// ended the scan.
/// One materialized component entry: key, matter/anti-matter kind, payload.
pub type Entry = (Key, EntryKind, Vec<u8>);

pub type ScanItem = Result<Entry, StorageError>;

/// Streaming scan over a component's leaf blocks (or row groups).
pub struct ComponentScan {
    component: Arc<DiskComponent>,
    cache: Arc<BufferCache>,
    body: ScanBody,
    failed: bool,
    skip_until: Option<Key>,
}

/// Per-layout cursor state of a [`ComponentScan`].
enum ScanBody {
    Rows { block_idx: usize, block: Vec<u8>, pos: usize, loaded: bool },
    Columnar { group_idx: usize, rows: std::vec::IntoIter<Entry> },
}

impl ComponentScan {
    /// The component this scan reads (for quarantine/health reporting).
    pub fn component(&self) -> &Arc<DiskComponent> {
        &self.component
    }

    /// Next entry: `(key, kind, payload)`, or `Some(Err(_))` if the
    /// underlying component turned out to be corrupt (the component is
    /// quarantined and the scan yields nothing further).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<ScanItem> {
        loop {
            if self.failed {
                return None;
            }
            let (key, kind, payload) = match &mut self.body {
                ScanBody::Rows { block_idx, block, pos, loaded } => {
                    if !*loaded {
                        let Body::Rows(index) = &self.component.body else {
                            unreachable!("rows cursor over columnar body")
                        };
                        let block_ref = index.get(*block_idx)?;
                        match self.component.read_block(&self.cache, block_ref) {
                            Ok(b) => *block = b,
                            Err(e) => {
                                self.failed = true;
                                return Some(Err(e));
                            }
                        }
                        *pos = 0;
                        *loaded = true;
                    }
                    if *pos >= block.len() {
                        *block_idx += 1;
                        *loaded = false;
                        continue;
                    }
                    let Some((k, kind, payload, n)) = read_entry(&block[*pos..]) else {
                        self.failed = true;
                        return Some(Err(self.component.corrupt_block(*block_idx)));
                    };
                    *pos += n;
                    (k.to_vec(), kind, payload.to_vec())
                }
                ScanBody::Columnar { group_idx, rows } => match rows.next() {
                    Some(row) => row,
                    None => {
                        let Body::Columnar(chunk) = &self.component.body else {
                            unreachable!("columnar cursor over rows body")
                        };
                        if *group_idx >= chunk.num_groups() {
                            return None;
                        }
                        let g = *group_idx;
                        *group_idx += 1;
                        match self.component.read_group(&self.cache, chunk.as_ref(), g) {
                            Ok(r) => *rows = r.into_iter(),
                            Err(e) => {
                                self.failed = true;
                                return Some(Err(e));
                            }
                        }
                        continue;
                    }
                },
            };
            if let Some(skip) = &self.skip_until {
                if key < *skip {
                    continue;
                }
            }
            self.skip_until = None;
            return Some(Ok((key, kind, payload)));
        }
    }
}

/// Builds a component from entries supplied in ascending key order — used
/// by flush, merge, and bulk load (the paper's §4.3 bulk-load builds a
/// single component bottom-up exactly like this).
pub struct ComponentBuilder {
    store: PageStore,
    buf: Vec<u8>,
    index: Vec<BlockRef>,
    pending_first_key: Option<Key>,
    bloom: BloomFilter,
    next_page: u64,
    num_entries: u64,
    num_antimatter: u64,
    last_key: Option<Key>,
    page_size: usize,
    /// When set, entries are buffered and handed to the codec at `finish`
    /// instead of being packed into row blocks (columnar mode).
    columnar: Option<(Arc<dyn ColumnarCodec>, Vec<Entry>)>,
}

impl ComponentBuilder {
    pub fn new(
        device: Arc<Device>,
        page_size: usize,
        scheme: CompressionScheme,
        expected_keys: usize,
        bloom_bits_per_key: usize,
    ) -> Self {
        ComponentBuilder {
            store: PageStore::new(device, page_size, scheme),
            buf: Vec::with_capacity(page_size),
            index: Vec::new(),
            pending_first_key: None,
            bloom: BloomFilter::with_capacity(expected_keys, bloom_bits_per_key),
            next_page: 0,
            num_entries: 0,
            num_antimatter: 0,
            last_key: None,
            page_size,
            columnar: None,
        }
    }

    /// Toggle per-page CRC footers on the component's store (see
    /// [`PageStore::with_integrity`]). Defaults to on.
    pub fn with_integrity(mut self, on: bool) -> Self {
        self.store = self.store.with_integrity(on);
        self
    }

    /// Build this component in the columnar (AMAX) layout: entries are
    /// buffered and shredded into column pages by `codec` at `finish`.
    pub fn with_columnar(mut self, codec: Arc<dyn ColumnarCodec>) -> Self {
        self.columnar = Some((codec, Vec::new()));
        self
    }

    /// Append one entry. Keys must arrive in strictly ascending order. A
    /// write fault aborts the build (the half-written store is simply
    /// dropped — components only become visible after `finish`).
    pub fn push(
        &mut self,
        key: &[u8],
        kind: EntryKind,
        payload: &[u8],
    ) -> Result<(), StorageError> {
        if let Some(last) = &self.last_key {
            assert!(key > last.as_slice(), "component entries must be strictly ascending");
        }
        self.last_key = Some(key.to_vec());
        self.bloom.insert(key);
        self.num_entries += 1;
        if kind == EntryKind::AntiMatter {
            self.num_antimatter += 1;
        }
        if let Some((_, rows)) = &mut self.columnar {
            rows.push((key.to_vec(), kind, payload.to_vec()));
            return Ok(());
        }
        if self.pending_first_key.is_none() {
            self.pending_first_key = Some(key.to_vec());
        }
        write_entry(&mut self.buf, key, kind, payload);
        if self.buf.len() >= self.page_size {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<(), StorageError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let byte_len = self.buf.len() as u32;
        let mut writer = PageWriter::new(&self.store);
        writer.append(&self.buf)?;
        let pages = writer.finish()?;
        let start_page = pages[0];
        debug_assert_eq!(start_page, self.next_page);
        self.next_page += pages.len() as u64;
        self.index.push(BlockRef {
            first_key: self.pending_first_key.take().expect("block has entries"),
            start_page,
            byte_len,
        });
        self.buf.clear();
        Ok(())
    }

    /// Finish the component. `valid=false` simulates a crash between data
    /// write and validity-bit set (recovery must discard the component).
    pub fn finish(
        mut self,
        id: ComponentId,
        metadata: Option<Vec<u8>>,
        valid: bool,
    ) -> Result<DiskComponent, StorageError> {
        let body = match self.columnar.take() {
            Some((codec, rows)) => {
                // The codec writes every column page (and its index blob)
                // through this component's store, then hands back the chunk.
                Body::Columnar(codec.build_chunk(&self.store, &rows, metadata.as_deref())?)
            }
            None => {
                self.flush_block()?;
                Body::Rows(std::mem::take(&mut self.index))
            }
        };
        let row_index: &[BlockRef] = match &body {
            Body::Rows(index) => index,
            Body::Columnar(_) => &[],
        };
        // Persist index, bloom, and metadata after the leaves, so the
        // component's on-disk footprint is complete.
        let mut tail = Vec::new();
        varint::write_u64(&mut tail, row_index.len() as u64);
        for b in row_index {
            varint::write_u64(&mut tail, b.first_key.len() as u64);
            tail.extend_from_slice(&b.first_key);
            varint::write_u64(&mut tail, b.start_page);
            varint::write_u64(&mut tail, b.byte_len as u64);
        }
        let bloom_bytes = self.bloom.serialize();
        varint::write_u64(&mut tail, bloom_bytes.len() as u64);
        tail.extend_from_slice(&bloom_bytes);
        match &metadata {
            None => {
                varint::write_u64(&mut tail, 0);
            }
            Some(m) => {
                varint::write_u64(&mut tail, m.len() as u64 + 1);
                tail.extend_from_slice(m);
            }
        }
        tail.extend_from_slice(&id.min.to_le_bytes());
        tail.extend_from_slice(&id.max.to_le_bytes());
        tail.extend_from_slice(&self.num_entries.to_le_bytes());
        let mut writer = PageWriter::new(&self.store);
        writer.append(&tail)?;
        writer.finish()?;

        let c = DiskComponent {
            id,
            store: self.store,
            body,
            bloom: self.bloom,
            metadata,
            max_key: self.last_key,
            valid: AtomicBool::new(valid),
            quarantined: AtomicBool::new(false),
            num_entries: self.num_entries,
            num_antimatter: self.num_antimatter,
        };
        debug_assert!(valid || !c.is_valid());
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_storage::device::DeviceProfile;

    fn build(n: u64, page_size: usize) -> (Arc<DiskComponent>, Arc<BufferCache>) {
        let device = Arc::new(Device::new(DeviceProfile::RAM));
        let mut b =
            ComponentBuilder::new(device, page_size, CompressionScheme::None, n as usize, 10);
        for i in 0..n {
            let key = (i * 2).to_be_bytes(); // even keys only
            let payload = format!("value-{i}");
            b.push(&key, EntryKind::Record, payload.as_bytes()).unwrap();
        }
        let c = b.finish(ComponentId::flushed(0), Some(b"schema".to_vec()), true).unwrap();
        (Arc::new(c), Arc::new(BufferCache::new(128)))
    }

    #[test]
    fn point_lookup_hits_and_misses() {
        let (c, cache) = build(500, 256);
        for i in [0u64, 1, 250, 499] {
            let (kind, payload) = c.get(&cache, &(i * 2).to_be_bytes()).unwrap().unwrap();
            assert_eq!(kind, EntryKind::Record);
            assert_eq!(payload, format!("value-{i}").into_bytes());
        }
        // Odd keys are absent.
        for i in [1u64, 501, 999] {
            assert!(c.get(&cache, &i.to_be_bytes()).unwrap().is_none());
        }
        // Key below the first.
        assert!(c.get(&cache, &[0u8; 1]).unwrap().is_none());
    }

    #[test]
    fn scan_returns_all_in_order() {
        let (c, cache) = build(300, 128);
        let mut scan = c.scan(&cache, None);
        let mut prev: Option<Key> = None;
        let mut count = 0;
        while let Some(item) = scan.next() {
            let (k, kind, _) = item.unwrap();
            assert_eq!(kind, EntryKind::Record);
            if let Some(p) = &prev {
                assert!(k > *p);
            }
            prev = Some(k);
            count += 1;
        }
        assert_eq!(count, 300);
    }

    #[test]
    fn scan_from_start_key() {
        let (c, cache) = build(100, 128);
        // Start between keys 100 (i=50) and 102 (i=51).
        let start = 101u64.to_be_bytes();
        let mut scan = c.scan(&cache, Some(&start));
        let (k, _, _) = scan.next().unwrap().unwrap();
        assert_eq!(u64::from_be_bytes(k[..8].try_into().unwrap()), 102);
        let mut rest = 1;
        while scan.next().is_some() {
            rest += 1;
        }
        assert_eq!(rest, 49);
    }

    #[test]
    fn oversized_entries_span_pages() {
        let device = Arc::new(Device::new(DeviceProfile::RAM));
        let mut b = ComponentBuilder::new(device, 64, CompressionScheme::None, 4, 10);
        let big = vec![7u8; 500];
        b.push(b"a", EntryKind::Record, &big).unwrap();
        b.push(b"b", EntryKind::Record, b"small").unwrap();
        let c = b.finish(ComponentId::flushed(1), None, true).unwrap();
        let cache = BufferCache::new(64);
        assert_eq!(c.get(&cache, b"a").unwrap().unwrap().1, big);
        assert_eq!(c.get(&cache, b"b").unwrap().unwrap().1, b"small".to_vec());
    }

    #[test]
    fn antimatter_entries_roundtrip() {
        let device = Arc::new(Device::new(DeviceProfile::RAM));
        let mut b = ComponentBuilder::new(device, 128, CompressionScheme::None, 2, 10);
        b.push(b"dead", EntryKind::AntiMatter, &[]).unwrap();
        b.push(b"live", EntryKind::Record, b"x").unwrap();
        let c = b.finish(ComponentId::flushed(2), None, true).unwrap();
        let cache = BufferCache::new(8);
        assert_eq!(c.get(&cache, b"dead").unwrap().unwrap().0, EntryKind::AntiMatter);
        assert_eq!(c.num_antimatter(), 1);
        assert_eq!(c.num_entries(), 2);
    }

    #[test]
    fn validity_bit_lifecycle() {
        let device = Arc::new(Device::new(DeviceProfile::RAM));
        let mut b = ComponentBuilder::new(device, 128, CompressionScheme::None, 1, 10);
        b.push(b"k", EntryKind::Record, b"v").unwrap();
        let c = b.finish(ComponentId::flushed(3), None, false).unwrap();
        assert!(!c.is_valid(), "INVALID until the operation completes");
        c.set_valid();
        assert!(c.is_valid());
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn out_of_order_push_panics() {
        let device = Arc::new(Device::new(DeviceProfile::RAM));
        let mut b = ComponentBuilder::new(device, 128, CompressionScheme::None, 2, 10);
        b.push(b"b", EntryKind::Record, b"").unwrap();
        b.push(b"a", EntryKind::Record, b"").unwrap();
    }

    #[test]
    fn flipped_bit_quarantines_component_on_lookup() {
        use tc_storage::fault::FaultPlan;
        // Corrupt the very first data page while the component is built: the
        // build succeeds (bit flips are silent at write time), but any read
        // that touches the page must detect it, return a typed corruption
        // error, and quarantine the component — never decode garbage.
        let device = Arc::new(Device::new(DeviceProfile::RAM));
        device.set_fault_plan(FaultPlan::new(7).flip_bit_in_nth_write(1));
        let mut b = ComponentBuilder::new(Arc::clone(&device), 64, CompressionScheme::None, 32, 10);
        for i in 0..32u64 {
            b.push(&i.to_be_bytes(), EntryKind::Record, b"payload").unwrap();
        }
        let c = Arc::new(b.finish(ComponentId::flushed(0), None, true).unwrap());
        device.clear_fault_plan();
        assert!(!c.is_quarantined());
        let cache = BufferCache::new(16);
        let err = c.get(&cache, &0u64.to_be_bytes()).unwrap_err();
        assert!(err.is_corruption(), "got {err}");
        assert!(c.is_quarantined());
        assert!(device.checksum_failures() >= 1);
    }

    #[test]
    fn flipped_bit_stops_scan_with_error() {
        use tc_storage::fault::FaultPlan;
        let device = Arc::new(Device::new(DeviceProfile::RAM));
        // Flip a bit in a LATER data page: the scan yields the first
        // block's entries, then surfaces the corruption and ends.
        device.set_fault_plan(FaultPlan::new(9).flip_bit_in_nth_write(4));
        let mut b = ComponentBuilder::new(Arc::clone(&device), 64, CompressionScheme::None, 64, 10);
        for i in 0..64u64 {
            b.push(&i.to_be_bytes(), EntryKind::Record, b"payload").unwrap();
        }
        let c = Arc::new(b.finish(ComponentId::flushed(0), None, true).unwrap());
        device.clear_fault_plan();
        let cache = Arc::new(BufferCache::new(16));
        let mut scan = c.scan(&cache, None);
        let mut clean = 0usize;
        let mut saw_error = false;
        while let Some(item) = scan.next() {
            match item {
                Ok(_) => clean += 1,
                Err(e) => {
                    assert!(e.is_corruption());
                    saw_error = true;
                }
            }
        }
        assert!(saw_error, "scan must surface the corrupt page");
        assert!(clean >= 1, "entries before the damage still stream");
        assert!(clean < 64, "entries after the damage must not appear");
        assert!(c.is_quarantined());
    }

    #[test]
    fn key_range_filter() {
        let (c, _) = build(100, 128); // keys 0..=198 (even)
        let max = 198u64.to_be_bytes();
        assert_eq!(c.max_key(), Some(&max[..]));
        let k = |v: u64| v.to_be_bytes().to_vec();
        // Fully inside.
        assert!(c.overlaps(Some(&k(10)), Some(&k(20))));
        // Range entirely above the component.
        assert!(!c.overlaps(Some(&k(199)), Some(&k(300))));
        // Range entirely below (end ≤ min).
        assert!(!c.overlaps(None, Some(&k(0))));
        // Touching boundaries.
        assert!(c.overlaps(Some(&k(198)), None));
        assert!(c.overlaps(None, Some(&k(1))));
        // Unbounded.
        assert!(c.overlaps(None, None));
    }

    #[test]
    fn component_id_display_and_order() {
        let c0 = ComponentId::flushed(0);
        let c1 = ComponentId::flushed(1);
        let merged = ComponentId::merged(c0, c1);
        assert_eq!(c0.to_string(), "C0");
        assert_eq!(merged.to_string(), "[C0,C1]");
        assert!(c1.max > c0.max);
        assert_eq!(merged.max, c1.max);
    }

    #[test]
    fn disk_bytes_include_tail_structures() {
        let (c, _) = build(100, 128);
        // 100 records ≈ data; index+bloom+metadata pages add beyond that.
        let data_estimate: u64 = 100 * 16;
        assert!(c.disk_bytes() > data_estimate);
        assert_eq!(c.metadata(), Some(&b"schema"[..]));
    }
}
