//! Bloom filters on component keys.
//!
//! AsterixDB attaches bloom filters to on-disk components so point lookups
//! skip components that cannot contain a key — the mechanism that keeps
//! upsert-time existence checks affordable (paper §3.2.2, [28, 29]).

use tc_util::hash::hash_bytes;

/// A classic k-hash bloom filter using double hashing.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    num_hashes: u32,
}

impl BloomFilter {
    /// Build for an expected number of keys at a bits-per-key budget
    /// (10 bits/key ≈ 1% false positives with 7 hashes).
    pub fn with_capacity(expected_keys: usize, bits_per_key: usize) -> Self {
        let num_bits = (expected_keys.max(1) * bits_per_key).max(64) as u64;
        let words = num_bits.div_ceil(64) as usize;
        let num_hashes = ((bits_per_key as f64) * 0.69).round().clamp(1.0, 30.0) as u32;
        BloomFilter { bits: vec![0u64; words], num_bits: words as u64 * 64, num_hashes }
    }

    #[inline]
    fn probes(&self, key: &[u8]) -> impl Iterator<Item = u64> + '_ {
        let h = hash_bytes(key);
        let h1 = h;
        let h2 = h.rotate_left(32) | 1; // odd ⇒ full cycle
        (0..self.num_hashes as u64)
            .map(move |i| h1.wrapping_add(i.wrapping_mul(h2)) % self.num_bits)
    }

    pub fn insert(&mut self, key: &[u8]) {
        let probes: Vec<u64> = self.probes(key).collect();
        for bit in probes {
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// May return false positives, never false negatives.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.probes(key).all(|bit| self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0)
    }

    /// Size of the filter's bit array in bytes (persisted with the
    /// component).
    pub fn byte_len(&self) -> usize {
        self.bits.len() * 8
    }

    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.byte_len());
        out.extend_from_slice(&self.num_hashes.to_le_bytes());
        out.extend_from_slice(&(self.bits.len() as u32).to_le_bytes());
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    pub fn deserialize(buf: &[u8]) -> Option<Self> {
        if buf.len() < 8 {
            return None;
        }
        let num_hashes = u32::from_le_bytes(buf[0..4].try_into().ok()?);
        let words = u32::from_le_bytes(buf[4..8].try_into().ok()?) as usize;
        let body = buf.get(8..8 + words * 8)?;
        let bits: Vec<u64> =
            body.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().expect("8"))).collect();
        Some(BloomFilter { num_bits: words as u64 * 64, bits, num_hashes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_capacity(1000, 10);
        for i in 0..1000u64 {
            f.insert(&i.to_be_bytes());
        }
        for i in 0..1000u64 {
            assert!(f.contains(&i.to_be_bytes()), "false negative for {i}");
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut f = BloomFilter::with_capacity(10_000, 10);
        for i in 0..10_000u64 {
            f.insert(&i.to_be_bytes());
        }
        let fp = (10_000..110_000u64).filter(|i| f.contains(&i.to_be_bytes())).count();
        let rate = fp as f64 / 100_000.0;
        assert!(rate < 0.03, "false positive rate too high: {rate}");
    }

    #[test]
    fn empty_filter_contains_nothing_much() {
        let f = BloomFilter::with_capacity(100, 10);
        let hits = (0..1000u64).filter(|i| f.contains(&i.to_be_bytes())).count();
        assert_eq!(hits, 0);
    }

    #[test]
    fn serialize_roundtrip() {
        let mut f = BloomFilter::with_capacity(500, 10);
        for i in 0..500u64 {
            f.insert(&i.to_be_bytes());
        }
        let bytes = f.serialize();
        let g = BloomFilter::deserialize(&bytes).unwrap();
        for i in 0..500u64 {
            assert!(g.contains(&i.to_be_bytes()));
        }
        assert!(BloomFilter::deserialize(&bytes[..4]).is_none());
    }
}
