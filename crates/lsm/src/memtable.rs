//! The in-memory component.
//!
//! A sorted map under a byte budget. Records here are *not* compacted — the
//! paper (§3.1) deliberately leaves in-memory records untouched because the
//! savings would be negligible and concurrent maintenance would slow
//! ingestion. Deletes store anti-matter entries carrying an opaque
//! attachment (the anti-schema, §3.2.2) for the flush hook to process.

use std::collections::BTreeMap;
use std::ops::Bound;

use crate::entry::Key;

/// An entry in the in-memory component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemEntry {
    Record(Vec<u8>),
    /// Anti-matter with an optional hook attachment (anti-schema bytes);
    /// the attachment is consumed at flush and never written to disk.
    AntiMatter(Option<Vec<u8>>),
}

impl MemEntry {
    fn weight(&self, key_len: usize) -> usize {
        // Rough per-entry memory footprint: key + payload + node overhead.
        const NODE_OVERHEAD: usize = 64;
        key_len
            + NODE_OVERHEAD
            + match self {
                MemEntry::Record(p) => p.len(),
                MemEntry::AntiMatter(a) => a.as_ref().map_or(0, Vec::len),
            }
    }
}

/// The in-memory component: a BTreeMap plus byte accounting.
#[derive(Debug, Default)]
pub struct Memtable {
    map: BTreeMap<Key, MemEntry>,
    bytes: usize,
}

impl Memtable {
    pub fn new() -> Self {
        Memtable::default()
    }

    /// Insert or overwrite. Within one in-memory component the latest write
    /// wins (an upsert's delete+insert collapses to the insert). Returns the
    /// displaced entry — the tree inspects it to preserve anti-schema
    /// attachments that a subsequent insert would otherwise discard
    /// (§3.2.2: the compactor must still decrement counters for the old,
    /// *flushed* version of an upserted record).
    pub fn put(&mut self, key: Key, entry: MemEntry) -> Option<MemEntry> {
        let key_len = key.len();
        let add = entry.weight(key_len);
        let displaced = self.map.insert(key, entry);
        if let Some(old) = &displaced {
            self.bytes = self.bytes.saturating_sub(old.weight(key_len)) + add;
        } else {
            self.bytes += add;
        }
        displaced
    }

    pub fn get(&self, key: &[u8]) -> Option<&MemEntry> {
        self.map.get(key)
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate memory usage in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Iterate all entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &MemEntry)> {
        self.map.iter()
    }

    /// Iterate a key range.
    pub fn range<'a>(
        &'a self,
        start: Bound<&'a [u8]>,
        end: Bound<&'a [u8]>,
    ) -> impl Iterator<Item = (&'a Key, &'a MemEntry)> + 'a {
        self.map.range::<[u8], _>((start, end))
    }

    /// Drain the table for a flush, leaving it empty.
    pub fn take(&mut self) -> BTreeMap<Key, MemEntry> {
        self.bytes = 0;
        std::mem::take(&mut self.map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_overwrite() {
        let mut m = Memtable::new();
        m.put(b"k1".to_vec(), MemEntry::Record(b"v1".to_vec()));
        m.put(b"k2".to_vec(), MemEntry::Record(b"v2".to_vec()));
        assert_eq!(m.get(b"k1"), Some(&MemEntry::Record(b"v1".to_vec())));
        m.put(b"k1".to_vec(), MemEntry::AntiMatter(None));
        assert_eq!(m.get(b"k1"), Some(&MemEntry::AntiMatter(None)));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut m = Memtable::new();
        for k in [5u64, 1, 9, 3] {
            m.put(k.to_be_bytes().to_vec(), MemEntry::Record(vec![]));
        }
        let keys: Vec<u64> =
            m.iter().map(|(k, _)| u64::from_be_bytes(k[..8].try_into().unwrap())).collect();
        assert_eq!(keys, vec![1, 3, 5, 9]);
    }

    #[test]
    fn byte_accounting_grows_and_resets() {
        let mut m = Memtable::new();
        assert_eq!(m.bytes(), 0);
        m.put(vec![0; 10], MemEntry::Record(vec![0; 100]));
        let b1 = m.bytes();
        assert!(b1 >= 110, "at least key+payload: {b1}");
        m.put(vec![1; 10], MemEntry::Record(vec![0; 100]));
        assert!(m.bytes() > b1);
        let drained = m.take();
        assert_eq!(drained.len(), 2);
        assert_eq!(m.bytes(), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn range_scan() {
        let mut m = Memtable::new();
        for k in 0u64..10 {
            m.put(k.to_be_bytes().to_vec(), MemEntry::Record(vec![k as u8]));
        }
        let lo = 3u64.to_be_bytes();
        let hi = 7u64.to_be_bytes();
        let got: Vec<u64> = m
            .range(Bound::Included(&lo[..]), Bound::Excluded(&hi[..]))
            .map(|(k, _)| u64::from_be_bytes(k[..8].try_into().unwrap()))
            .collect();
        assert_eq!(got, vec![3, 4, 5, 6]);
    }
}
