//! Write-ahead log (paper §2.2).
//!
//! AsterixDB uses no-steal/no-force buffer management with WAL: every
//! insert/delete is logged before entering the in-memory component, and the
//! log for a component can be truncated once that component is VALID on
//! disk. Recovery replays the log to rebuild the lost in-memory component
//! (§3.1.2). Anti-matter log records carry their hook attachment so a
//! replayed flush can still process anti-schemas.
//!
//! The log is segmented to support *background* flushes: when the in-memory
//! component is frozen for flushing, the active segment is rotated into the
//! frozen segment (a rename — no data is rewritten), and new writes land in
//! a fresh active segment. When the flush installs its VALID component, only
//! the frozen segment is discarded; operations logged while the flush was
//! running stay covered. A crash between rotation and install leaves both
//! segments, and replay walks frozen-then-active, restoring exactly the
//! un-flushed suffix.

use std::sync::Arc;

use tc_storage::device::Device;
use tc_storage::file::FileStore;
use tc_util::sync::{ranks, OrderedMutex};
use tc_util::varint;

use crate::entry::Key;
use crate::memtable::MemEntry;

/// Log record kinds.
const OP_INSERT: u8 = 0;
const OP_ANTIMATTER: u8 = 1;
const OP_ANTIMATTER_WITH_ATTACHMENT: u8 = 2;

/// A two-segment append-only log of memtable operations.
#[derive(Debug)]
pub struct Wal {
    /// Records covering the active in-memory component.
    active: FileStore,
    /// Records covering the frozen component currently being flushed
    /// (empty whenever no flush is in flight). Held in memory directly:
    /// rotation models a file rename, so it charges no device IO.
    frozen: OrderedMutex<Vec<u8>>,
}

impl Wal {
    pub fn new(device: Arc<Device>) -> Self {
        Wal {
            active: FileStore::new(device),
            frozen: OrderedMutex::new(ranks::WAL_FROZEN, Vec::new()),
        }
    }

    /// Append one operation. In a no-force design this is the only write
    /// that must reach the log device before the operation commits.
    pub fn log(&self, key: &[u8], entry: &MemEntry) {
        let mut rec = Vec::with_capacity(key.len() + 16);
        match entry {
            MemEntry::Record(payload) => {
                rec.push(OP_INSERT);
                varint::write_u64(&mut rec, key.len() as u64);
                rec.extend_from_slice(key);
                varint::write_u64(&mut rec, payload.len() as u64);
                rec.extend_from_slice(payload);
            }
            MemEntry::AntiMatter(None) => {
                rec.push(OP_ANTIMATTER);
                varint::write_u64(&mut rec, key.len() as u64);
                rec.extend_from_slice(key);
            }
            MemEntry::AntiMatter(Some(att)) => {
                rec.push(OP_ANTIMATTER_WITH_ATTACHMENT);
                varint::write_u64(&mut rec, key.len() as u64);
                rec.extend_from_slice(key);
                varint::write_u64(&mut rec, att.len() as u64);
                rec.extend_from_slice(att);
            }
        }
        // Frame with a length prefix so torn tails are detectable.
        let mut framed = Vec::with_capacity(rec.len() + 5);
        varint::write_u64(&mut framed, rec.len() as u64);
        framed.extend_from_slice(&rec);
        self.active.append(&framed);
    }

    /// Rotate the active segment into the frozen segment — called under the
    /// tree's state write lock when the in-memory component is frozen for a
    /// flush, so the active segment always covers exactly the active
    /// memtable. Appends to (rather than replaces) the frozen segment:
    /// after a recovery both segments may hold records, and order must be
    /// preserved (frozen is always older than active).
    pub fn rotate(&self) {
        let mut frozen = self.frozen.lock();
        if frozen.is_empty() {
            // Common case: a pure buffer handoff, O(1) — rotation runs
            // inside the tree's freeze critical section and must not stall
            // writers/readers on a copy.
            *frozen = self.active.take_all();
        } else {
            // Post-recovery case only (both segments held records and no
            // flush has completed since): append to preserve order.
            let bytes = self.active.take_all();
            frozen.extend_from_slice(&bytes);
        }
    }

    /// Drop the frozen segment after its component became VALID on disk
    /// (§2.2: a flushed component's log records are no longer needed).
    pub fn discard_frozen(&self) {
        self.frozen.lock().clear();
    }

    /// Truncate *both* segments. Test/maintenance helper only — a
    /// production flush must use [`Wal::discard_frozen`] instead, because
    /// resetting the active segment too would strip coverage from writes
    /// that raced the flush.
    pub fn reset(&self) {
        self.frozen.lock().clear();
        self.active.truncate(0);
    }

    pub fn byte_len(&self) -> u64 {
        self.frozen.lock().len() as u64 + self.active.len()
    }

    /// Replay all intact records, frozen segment first (it is strictly
    /// older); a torn tail (truncated frame) stops the replay silently,
    /// mirroring crash-recovery semantics.
    pub fn replay(&self) -> Vec<(Key, MemEntry)> {
        let mut buf = self.frozen.lock().clone();
        let active_len = self.active.len() as usize;
        if active_len > 0 {
            buf.extend_from_slice(&self.active.read(0, active_len));
        }
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < buf.len() {
            let Some((frame_len, n)) = varint::read_u64(&buf[pos..]) else {
                break;
            };
            let body_start = pos + n;
            let body_end = body_start + frame_len as usize;
            if body_end > buf.len() {
                break; // torn tail
            }
            let body = &buf[body_start..body_end];
            if let Some(rec) = parse_record(body) {
                out.push(rec);
            } else {
                break; // corrupt record: stop at the damage
            }
            pos = body_end;
        }
        out
    }

    /// Corrupt the tail of the active segment (test helper for torn-write
    /// simulation).
    pub fn tear_tail(&self, bytes: u64) {
        let len = self.active.len();
        self.active.truncate(len.saturating_sub(bytes));
    }
}

fn parse_record(body: &[u8]) -> Option<(Key, MemEntry)> {
    let op = *body.first()?;
    let mut pos = 1usize;
    let (klen, n) = varint::read_u64(&body[pos..])?;
    pos += n;
    let key = body.get(pos..pos + klen as usize)?.to_vec();
    pos += klen as usize;
    match op {
        OP_INSERT => {
            let (plen, n) = varint::read_u64(&body[pos..])?;
            pos += n;
            let payload = body.get(pos..pos + plen as usize)?.to_vec();
            Some((key, MemEntry::Record(payload)))
        }
        OP_ANTIMATTER => Some((key, MemEntry::AntiMatter(None))),
        OP_ANTIMATTER_WITH_ATTACHMENT => {
            let (alen, n) = varint::read_u64(&body[pos..])?;
            pos += n;
            let att = body.get(pos..pos + alen as usize)?.to_vec();
            Some((key, MemEntry::AntiMatter(Some(att))))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_storage::device::DeviceProfile;

    fn wal() -> Wal {
        Wal::new(Arc::new(Device::new(DeviceProfile::RAM)))
    }

    #[test]
    fn replay_returns_operations_in_order() {
        let w = wal();
        w.log(b"k1", &MemEntry::Record(b"v1".to_vec()));
        w.log(b"k2", &MemEntry::AntiMatter(None));
        w.log(b"k3", &MemEntry::AntiMatter(Some(b"anti-schema".to_vec())));
        let ops = w.replay();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0], (b"k1".to_vec(), MemEntry::Record(b"v1".to_vec())));
        assert_eq!(ops[1], (b"k2".to_vec(), MemEntry::AntiMatter(None)));
        assert_eq!(ops[2], (b"k3".to_vec(), MemEntry::AntiMatter(Some(b"anti-schema".to_vec()))));
    }

    #[test]
    fn reset_clears_log() {
        let w = wal();
        w.log(b"k", &MemEntry::Record(vec![1, 2, 3]));
        assert!(w.byte_len() > 0);
        w.reset();
        assert_eq!(w.byte_len(), 0);
        assert!(w.replay().is_empty());
    }

    #[test]
    fn torn_tail_drops_only_last_record() {
        let w = wal();
        w.log(b"k1", &MemEntry::Record(b"v1".to_vec()));
        w.log(b"k2", &MemEntry::Record(b"v2-longer-payload".to_vec()));
        w.tear_tail(5);
        let ops = w.replay();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].0, b"k1".to_vec());
    }

    #[test]
    fn empty_wal_replays_nothing() {
        assert!(wal().replay().is_empty());
    }

    #[test]
    fn rotation_splits_coverage_between_segments() {
        let w = wal();
        w.log(b"old", &MemEntry::Record(b"a".to_vec()));
        w.rotate(); // freeze for flush
        w.log(b"new", &MemEntry::Record(b"b".to_vec()));
        // Crash before install: both segments replay, old first.
        let ops = w.replay();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].0, b"old".to_vec());
        assert_eq!(ops[1].0, b"new".to_vec());
        // Install completes: only the frozen segment is discarded.
        w.discard_frozen();
        let ops = w.replay();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].0, b"new".to_vec());
    }

    #[test]
    fn rotation_onto_nonempty_frozen_preserves_order() {
        // After recovery both segments hold records; the next rotation must
        // append the (newer) active records after the existing frozen ones.
        let w = wal();
        w.log(b"k1", &MemEntry::Record(b"a".to_vec()));
        w.rotate();
        w.log(b"k2", &MemEntry::Record(b"b".to_vec()));
        w.rotate(); // frozen now holds k1 then k2
        let ops = w.replay();
        assert_eq!(
            ops.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
            vec![b"k1".to_vec(), b"k2".to_vec()]
        );
    }

    #[test]
    fn tear_tail_affects_active_segment_only() {
        let w = wal();
        w.log(b"flushed", &MemEntry::Record(b"x".to_vec()));
        w.rotate();
        w.log(b"torn", &MemEntry::Record(b"y-longer-payload".to_vec()));
        w.tear_tail(4);
        let ops = w.replay();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].0, b"flushed".to_vec());
    }
}
