//! Write-ahead log (paper §2.2).
//!
//! AsterixDB uses no-steal/no-force buffer management with WAL: every
//! insert/delete is logged before entering the in-memory component, and the
//! log for a component can be truncated once that component is VALID on
//! disk. Recovery replays the log to rebuild the lost in-memory component
//! (§3.1.2). Anti-matter log records carry their hook attachment so a
//! replayed flush can still process anti-schemas.

use std::sync::Arc;

use tc_storage::device::Device;
use tc_storage::file::FileStore;
use tc_util::varint;

use crate::entry::Key;
use crate::memtable::MemEntry;

/// Log record kinds.
const OP_INSERT: u8 = 0;
const OP_ANTIMATTER: u8 = 1;
const OP_ANTIMATTER_WITH_ATTACHMENT: u8 = 2;

/// An append-only log of memtable operations.
#[derive(Debug)]
pub struct Wal {
    file: FileStore,
}

impl Wal {
    pub fn new(device: Arc<Device>) -> Self {
        Wal { file: FileStore::new(device) }
    }

    /// Append one operation. In a no-force design this is the only write
    /// that must reach the log device before the operation commits.
    pub fn log(&self, key: &[u8], entry: &MemEntry) {
        let mut rec = Vec::with_capacity(key.len() + 16);
        match entry {
            MemEntry::Record(payload) => {
                rec.push(OP_INSERT);
                varint::write_u64(&mut rec, key.len() as u64);
                rec.extend_from_slice(key);
                varint::write_u64(&mut rec, payload.len() as u64);
                rec.extend_from_slice(payload);
            }
            MemEntry::AntiMatter(None) => {
                rec.push(OP_ANTIMATTER);
                varint::write_u64(&mut rec, key.len() as u64);
                rec.extend_from_slice(key);
            }
            MemEntry::AntiMatter(Some(att)) => {
                rec.push(OP_ANTIMATTER_WITH_ATTACHMENT);
                varint::write_u64(&mut rec, key.len() as u64);
                rec.extend_from_slice(key);
                varint::write_u64(&mut rec, att.len() as u64);
                rec.extend_from_slice(att);
            }
        }
        // Frame with a length prefix so torn tails are detectable.
        let mut framed = Vec::with_capacity(rec.len() + 5);
        varint::write_u64(&mut framed, rec.len() as u64);
        framed.extend_from_slice(&rec);
        self.file.append(&framed);
    }

    /// Truncate after a successful flush (the flushed component's log
    /// records are no longer needed — §2.2).
    pub fn reset(&self) {
        self.file.truncate(0);
    }

    pub fn byte_len(&self) -> u64 {
        self.file.len()
    }

    /// Replay all intact records; a torn tail (truncated frame) stops the
    /// replay silently, mirroring crash-recovery semantics.
    pub fn replay(&self) -> Vec<(Key, MemEntry)> {
        let len = self.file.len() as usize;
        if len == 0 {
            return Vec::new();
        }
        let buf = self.file.read(0, len);
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < buf.len() {
            let Some((frame_len, n)) = varint::read_u64(&buf[pos..]) else {
                break;
            };
            let body_start = pos + n;
            let body_end = body_start + frame_len as usize;
            if body_end > buf.len() {
                break; // torn tail
            }
            let body = &buf[body_start..body_end];
            if let Some(rec) = parse_record(body) {
                out.push(rec);
            } else {
                break; // corrupt record: stop at the damage
            }
            pos = body_end;
        }
        out
    }

    /// Corrupt the tail (test helper for torn-write simulation).
    pub fn tear_tail(&self, bytes: u64) {
        let len = self.file.len();
        self.file.truncate(len.saturating_sub(bytes));
    }
}

fn parse_record(body: &[u8]) -> Option<(Key, MemEntry)> {
    let op = *body.first()?;
    let mut pos = 1usize;
    let (klen, n) = varint::read_u64(&body[pos..])?;
    pos += n;
    let key = body.get(pos..pos + klen as usize)?.to_vec();
    pos += klen as usize;
    match op {
        OP_INSERT => {
            let (plen, n) = varint::read_u64(&body[pos..])?;
            pos += n;
            let payload = body.get(pos..pos + plen as usize)?.to_vec();
            Some((key, MemEntry::Record(payload)))
        }
        OP_ANTIMATTER => Some((key, MemEntry::AntiMatter(None))),
        OP_ANTIMATTER_WITH_ATTACHMENT => {
            let (alen, n) = varint::read_u64(&body[pos..])?;
            pos += n;
            let att = body.get(pos..pos + alen as usize)?.to_vec();
            Some((key, MemEntry::AntiMatter(Some(att))))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_storage::device::DeviceProfile;

    fn wal() -> Wal {
        Wal::new(Arc::new(Device::new(DeviceProfile::RAM)))
    }

    #[test]
    fn replay_returns_operations_in_order() {
        let w = wal();
        w.log(b"k1", &MemEntry::Record(b"v1".to_vec()));
        w.log(b"k2", &MemEntry::AntiMatter(None));
        w.log(b"k3", &MemEntry::AntiMatter(Some(b"anti-schema".to_vec())));
        let ops = w.replay();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0], (b"k1".to_vec(), MemEntry::Record(b"v1".to_vec())));
        assert_eq!(ops[1], (b"k2".to_vec(), MemEntry::AntiMatter(None)));
        assert_eq!(ops[2], (b"k3".to_vec(), MemEntry::AntiMatter(Some(b"anti-schema".to_vec()))));
    }

    #[test]
    fn reset_clears_log() {
        let w = wal();
        w.log(b"k", &MemEntry::Record(vec![1, 2, 3]));
        assert!(w.byte_len() > 0);
        w.reset();
        assert_eq!(w.byte_len(), 0);
        assert!(w.replay().is_empty());
    }

    #[test]
    fn torn_tail_drops_only_last_record() {
        let w = wal();
        w.log(b"k1", &MemEntry::Record(b"v1".to_vec()));
        w.log(b"k2", &MemEntry::Record(b"v2-longer-payload".to_vec()));
        w.tear_tail(5);
        let ops = w.replay();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].0, b"k1".to_vec());
    }

    #[test]
    fn empty_wal_replays_nothing() {
        assert!(wal().replay().is_empty());
    }
}
