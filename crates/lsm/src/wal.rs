//! Write-ahead log (paper §2.2).
//!
//! AsterixDB uses no-steal/no-force buffer management with WAL: every
//! insert/delete is logged before entering the in-memory component, and the
//! log for a component can be truncated once that component is VALID on
//! disk. Recovery replays the log to rebuild the lost in-memory component
//! (§3.1.2). Anti-matter log records carry their hook attachment so a
//! replayed flush can still process anti-schemas.
//!
//! The log is segmented to support *background* flushes: when the in-memory
//! component is frozen for flushing, the active segment is rotated into the
//! frozen segment (a rename — no data is rewritten), and new writes land in
//! a fresh active segment. When the flush installs its VALID component, only
//! the frozen segment is discarded; operations logged while the flush was
//! running stay covered. A crash between rotation and install leaves both
//! segments, and replay walks frozen-then-active, restoring exactly the
//! un-flushed suffix.
//!
//! Every record is framed as `varint(body_len) | crc32(body) | body`, so
//! replay detects not only length-torn tails but *corrupt-in-the-middle*
//! records: the first record whose checksum fails truncates the replay
//! there (everything after it is unordered garbage by definition — the log
//! is sequential).

use std::sync::Arc;

use tc_storage::device::Device;
use tc_storage::error::StorageError;
use tc_storage::file::FileStore;
use tc_util::crc;
use tc_util::sync::{ranks, OrderedMutex};
use tc_util::varint;

use crate::entry::Key;
use crate::memtable::MemEntry;

/// Log record kinds.
const OP_INSERT: u8 = 0;
const OP_ANTIMATTER: u8 = 1;
const OP_ANTIMATTER_WITH_ATTACHMENT: u8 = 2;
/// An atomic upsert: anti-matter (with optional attachment) *and* the new
/// record in one log record, so a crash can never replay the delete half
/// without the insert half — that would lose the durably-acked old version.
const OP_REPLACE: u8 = 3;
const OP_REPLACE_WITH_ATTACHMENT: u8 = 4;

/// Bytes of the per-record CRC-32 field between the length prefix and body.
const REC_CRC_BYTES: usize = 4;

/// A two-segment append-only log of memtable operations.
#[derive(Debug)]
pub struct Wal {
    /// Records covering the active in-memory component.
    active: FileStore,
    /// Records covering the frozen component currently being flushed
    /// (empty whenever no flush is in flight). Held in memory directly:
    /// rotation models a file rename, so it charges no device IO.
    frozen: OrderedMutex<Vec<u8>>,
}

impl Wal {
    pub fn new(device: Arc<Device>) -> Self {
        Wal {
            active: FileStore::new(device),
            frozen: OrderedMutex::new(ranks::WAL_FROZEN, Vec::new()),
        }
    }

    /// Append one operation. In a no-force design this is the only write
    /// that must reach the log device before the operation commits — so if
    /// it fails, the operation is NOT acknowledged and the caller must not
    /// apply it to the memtable.
    pub fn log(&self, key: &[u8], entry: &MemEntry) -> Result<(), StorageError> {
        let mut rec = Vec::with_capacity(key.len() + 16);
        match entry {
            MemEntry::Record(payload) => {
                rec.push(OP_INSERT);
                varint::write_u64(&mut rec, key.len() as u64);
                rec.extend_from_slice(key);
                varint::write_u64(&mut rec, payload.len() as u64);
                rec.extend_from_slice(payload);
            }
            MemEntry::AntiMatter(None) => {
                rec.push(OP_ANTIMATTER);
                varint::write_u64(&mut rec, key.len() as u64);
                rec.extend_from_slice(key);
            }
            MemEntry::AntiMatter(Some(att)) => {
                rec.push(OP_ANTIMATTER_WITH_ATTACHMENT);
                varint::write_u64(&mut rec, key.len() as u64);
                rec.extend_from_slice(key);
                varint::write_u64(&mut rec, att.len() as u64);
                rec.extend_from_slice(att);
            }
        }
        // Frame with a length prefix (torn tails) and a CRC-32 of the body
        // (corrupt-in-the-middle records).
        self.append_framed(&rec)
    }

    /// Append an atomic replace: the new record plus (optionally) the
    /// displaced version's anti-schema attachment in ONE framed record.
    /// Replay expands it back into the anti-matter/insert pair, so a crash
    /// observes both halves or neither — never the delete alone.
    pub fn log_replace(
        &self,
        key: &[u8],
        payload: &[u8],
        attachment: Option<&[u8]>,
    ) -> Result<(), StorageError> {
        let mut rec =
            Vec::with_capacity(key.len() + payload.len() + attachment.map_or(0, <[u8]>::len) + 24);
        rec.push(if attachment.is_some() { OP_REPLACE_WITH_ATTACHMENT } else { OP_REPLACE });
        varint::write_u64(&mut rec, key.len() as u64);
        rec.extend_from_slice(key);
        varint::write_u64(&mut rec, payload.len() as u64);
        rec.extend_from_slice(payload);
        if let Some(att) = attachment {
            varint::write_u64(&mut rec, att.len() as u64);
            rec.extend_from_slice(att);
        }
        self.append_framed(&rec)
    }

    /// Frame a record body with a length prefix (torn tails) and a CRC-32
    /// (corrupt-in-the-middle records), then append it.
    fn append_framed(&self, rec: &[u8]) -> Result<(), StorageError> {
        let mut framed = Vec::with_capacity(rec.len() + 5 + REC_CRC_BYTES);
        varint::write_u64(&mut framed, rec.len() as u64);
        framed.extend_from_slice(&crc::crc32(rec).to_le_bytes());
        framed.extend_from_slice(rec);
        self.active.append(&framed).map(|_| ())
    }

    /// Rotate the active segment into the frozen segment — called under the
    /// tree's state write lock when the in-memory component is frozen for a
    /// flush, so the active segment always covers exactly the active
    /// memtable. Appends to (rather than replaces) the frozen segment:
    /// after a recovery both segments may hold records, and order must be
    /// preserved (frozen is always older than active). On failure nothing
    /// moved: both segments are exactly as before.
    pub fn rotate(&self) -> Result<(), StorageError> {
        let mut frozen = self.frozen.lock();
        if frozen.is_empty() {
            // Common case: a pure buffer handoff, O(1) — rotation runs
            // inside the tree's freeze critical section and must not stall
            // writers/readers on a copy.
            *frozen = self.active.take_all()?;
        } else {
            // Post-recovery case only (both segments held records and no
            // flush has completed since): append to preserve order.
            let bytes = self.active.take_all()?;
            frozen.extend_from_slice(&bytes);
        }
        Ok(())
    }

    /// Drop the frozen segment after its component became VALID on disk
    /// (§2.2: a flushed component's log records are no longer needed).
    pub fn discard_frozen(&self) {
        self.frozen.lock().clear();
    }

    /// Truncate *both* segments. Test/maintenance helper only — a
    /// production flush must use [`Wal::discard_frozen`] instead, because
    /// resetting the active segment too would strip coverage from writes
    /// that raced the flush.
    pub fn reset(&self) {
        self.frozen.lock().clear();
        self.active.truncate(0);
    }

    pub fn byte_len(&self) -> u64 {
        self.frozen.lock().len() as u64 + self.active.len()
    }

    /// Replay all intact records, frozen segment first (it is strictly
    /// older). A torn tail (truncated frame) or a record whose CRC-32 fails
    /// truncates the replay at that record — the log is sequential, so
    /// nothing after the first damage can be trusted. Checksum failures are
    /// counted on the device.
    pub fn replay(&self) -> Result<Vec<(Key, MemEntry)>, StorageError> {
        let mut buf = self.frozen.lock().clone();
        let active_len = self.active.len() as usize;
        if active_len > 0 {
            buf.extend_from_slice(&self.active.read(0, active_len)?);
        }
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < buf.len() {
            let Some((frame_len, n)) = varint::read_u64(&buf[pos..]) else {
                break;
            };
            let crc_start = pos + n;
            let Some(body_start) = crc_start.checked_add(REC_CRC_BYTES) else {
                break;
            };
            let Some(body_end) = body_start.checked_add(frame_len as usize) else {
                break;
            };
            if body_end > buf.len() {
                break; // torn tail
            }
            let stored =
                u32::from_le_bytes(buf[crc_start..body_start].try_into().expect("4 bytes"));
            let body = &buf[body_start..body_end];
            if crc::crc32(body) != stored {
                // Corrupt in the middle: detected, counted, replay stops.
                self.active.device().note_checksum_failure();
                break;
            }
            if parse_record(body, &mut out) {
                // parsed (possibly into several memtable operations)
            } else {
                // CRC passed but the body doesn't decode: a writer-side bug,
                // still surfaced as truncation rather than garbage.
                self.active.device().note_checksum_failure();
                break;
            }
            pos = body_end;
        }
        Ok(out)
    }

    /// Corrupt the tail of the active segment (test helper for torn-write
    /// simulation).
    pub fn tear_tail(&self, bytes: u64) {
        let len = self.active.len();
        self.active.truncate(len.saturating_sub(bytes));
    }
}

/// Decode one log-record body into memtable operations, appending them to
/// `out`. Returns false if the body doesn't decode (replay truncates
/// there). Replace records expand to their anti-matter/insert pair — both
/// operations come from one durable record, so replay can never observe
/// the pair half-applied.
fn parse_record(body: &[u8], out: &mut Vec<(Key, MemEntry)>) -> bool {
    fn inner(body: &[u8], out: &mut Vec<(Key, MemEntry)>) -> Option<()> {
        let op = *body.first()?;
        let mut pos = 1usize;
        let (klen, n) = varint::read_u64(&body[pos..])?;
        pos += n;
        let key = body.get(pos..pos + klen as usize)?.to_vec();
        pos += klen as usize;
        match op {
            OP_INSERT => {
                let (plen, n) = varint::read_u64(&body[pos..])?;
                pos += n;
                let payload = body.get(pos..pos + plen as usize)?.to_vec();
                out.push((key, MemEntry::Record(payload)));
            }
            OP_ANTIMATTER => out.push((key, MemEntry::AntiMatter(None))),
            OP_ANTIMATTER_WITH_ATTACHMENT => {
                let (alen, n) = varint::read_u64(&body[pos..])?;
                pos += n;
                let att = body.get(pos..pos + alen as usize)?.to_vec();
                out.push((key, MemEntry::AntiMatter(Some(att))));
            }
            OP_REPLACE | OP_REPLACE_WITH_ATTACHMENT => {
                let (plen, n) = varint::read_u64(&body[pos..])?;
                pos += n;
                let payload = body.get(pos..pos + plen as usize)?.to_vec();
                pos += plen as usize;
                let att = if op == OP_REPLACE_WITH_ATTACHMENT {
                    let (alen, n) = varint::read_u64(&body[pos..])?;
                    pos += n;
                    Some(body.get(pos..pos + alen as usize)?.to_vec())
                } else {
                    None
                };
                out.push((key.clone(), MemEntry::AntiMatter(att)));
                out.push((key, MemEntry::Record(payload)));
            }
            _ => return None,
        }
        Some(())
    }
    let before = out.len();
    if inner(body, out).is_none() {
        out.truncate(before);
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_storage::device::DeviceProfile;
    use tc_storage::error::IoOp;
    use tc_storage::fault::{FaultKind, FaultPlan};

    fn wal() -> Wal {
        Wal::new(Arc::new(Device::new(DeviceProfile::RAM)))
    }

    #[test]
    fn replace_records_replay_as_atomic_pairs() {
        let w = wal();
        w.log(b"k1", &MemEntry::Record(b"old".to_vec())).unwrap();
        w.log_replace(b"k1", b"new", Some(b"anti")).unwrap();
        w.log_replace(b"k2", b"fresh", None).unwrap();
        let ops = w.replay().unwrap();
        assert_eq!(
            ops,
            vec![
                (b"k1".to_vec(), MemEntry::Record(b"old".to_vec())),
                (b"k1".to_vec(), MemEntry::AntiMatter(Some(b"anti".to_vec()))),
                (b"k1".to_vec(), MemEntry::Record(b"new".to_vec())),
                (b"k2".to_vec(), MemEntry::AntiMatter(None)),
                (b"k2".to_vec(), MemEntry::Record(b"fresh".to_vec())),
            ]
        );
    }

    #[test]
    fn torn_replace_record_is_all_or_nothing() {
        // Tearing the replace append must not leave a replayable delete
        // half: the CRC fails over the partial frame and replay stops
        // before it.
        let w = wal();
        w.log(b"k1", &MemEntry::Record(b"old".to_vec())).unwrap();
        w.active.device().set_fault_plan(FaultPlan::new(9).tear_nth_write(1));
        assert!(w.log_replace(b"k1", b"new", Some(b"anti")).is_err());
        w.active.device().clear_fault_plan();
        let ops = w.replay().unwrap();
        assert_eq!(ops, vec![(b"k1".to_vec(), MemEntry::Record(b"old".to_vec()))]);
    }

    #[test]
    fn replay_returns_operations_in_order() {
        let w = wal();
        w.log(b"k1", &MemEntry::Record(b"v1".to_vec())).unwrap();
        w.log(b"k2", &MemEntry::AntiMatter(None)).unwrap();
        w.log(b"k3", &MemEntry::AntiMatter(Some(b"anti-schema".to_vec()))).unwrap();
        let ops = w.replay().unwrap();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0], (b"k1".to_vec(), MemEntry::Record(b"v1".to_vec())));
        assert_eq!(ops[1], (b"k2".to_vec(), MemEntry::AntiMatter(None)));
        assert_eq!(ops[2], (b"k3".to_vec(), MemEntry::AntiMatter(Some(b"anti-schema".to_vec()))));
    }

    #[test]
    fn reset_clears_log() {
        let w = wal();
        w.log(b"k", &MemEntry::Record(vec![1, 2, 3])).unwrap();
        assert!(w.byte_len() > 0);
        w.reset();
        assert_eq!(w.byte_len(), 0);
        assert!(w.replay().unwrap().is_empty());
    }

    #[test]
    fn torn_tail_drops_only_last_record() {
        let w = wal();
        w.log(b"k1", &MemEntry::Record(b"v1".to_vec())).unwrap();
        w.log(b"k2", &MemEntry::Record(b"v2-longer-payload".to_vec())).unwrap();
        w.tear_tail(5);
        let ops = w.replay().unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].0, b"k1".to_vec());
    }

    #[test]
    fn corrupt_middle_record_truncates_replay_there() {
        // A bit flip in the SECOND record must drop records 2 and 3 (the
        // log is sequential — nothing after the damage can be trusted) while
        // record 1 survives. Pre-CRC framing would have decoded garbage or
        // resynced incorrectly.
        let d = Arc::new(Device::new(DeviceProfile::RAM));
        let w = Wal::new(Arc::clone(&d));
        w.log(b"k1", &MemEntry::Record(b"v1".to_vec())).unwrap();
        d.set_fault_plan(FaultPlan::new(13).flip_bit_in_nth_write(1));
        w.log(b"k2", &MemEntry::Record(b"v2".to_vec())).unwrap();
        d.clear_fault_plan();
        w.log(b"k3", &MemEntry::Record(b"v3".to_vec())).unwrap();
        let ops = w.replay().unwrap();
        assert_eq!(ops.len(), 1, "replay truncates at the first invalid record");
        assert_eq!(ops[0].0, b"k1".to_vec());
        assert!(d.checksum_failures() >= 1, "damage was detected, not skipped");
    }

    #[test]
    fn failed_append_logs_nothing() {
        let d = Arc::new(Device::new(DeviceProfile::RAM));
        let w = Wal::new(Arc::clone(&d));
        d.set_fault_plan(FaultPlan::new(3).fail_nth(IoOp::Write, 1, FaultKind::Transient));
        assert!(w.log(b"k1", &MemEntry::Record(b"v1".to_vec())).is_err());
        // Retry after the transient fault: the log stays well-formed.
        w.log(b"k1", &MemEntry::Record(b"v1".to_vec())).unwrap();
        d.clear_fault_plan();
        let ops = w.replay().unwrap();
        assert_eq!(ops.len(), 1);
    }

    #[test]
    fn empty_wal_replays_nothing() {
        assert!(wal().replay().unwrap().is_empty());
    }

    #[test]
    fn rotation_splits_coverage_between_segments() {
        let w = wal();
        w.log(b"old", &MemEntry::Record(b"a".to_vec())).unwrap();
        w.rotate().unwrap(); // freeze for flush
        w.log(b"new", &MemEntry::Record(b"b".to_vec())).unwrap();
        // Crash before install: both segments replay, old first.
        let ops = w.replay().unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].0, b"old".to_vec());
        assert_eq!(ops[1].0, b"new".to_vec());
        // Install completes: only the frozen segment is discarded.
        w.discard_frozen();
        let ops = w.replay().unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].0, b"new".to_vec());
    }

    #[test]
    fn rotation_onto_nonempty_frozen_preserves_order() {
        // After recovery both segments hold records; the next rotation must
        // append the (newer) active records after the existing frozen ones.
        let w = wal();
        w.log(b"k1", &MemEntry::Record(b"a".to_vec())).unwrap();
        w.rotate().unwrap();
        w.log(b"k2", &MemEntry::Record(b"b".to_vec())).unwrap();
        w.rotate().unwrap(); // frozen now holds k1 then k2
        let ops = w.replay().unwrap();
        assert_eq!(
            ops.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
            vec![b"k1".to_vec(), b"k2".to_vec()]
        );
    }

    #[test]
    fn failed_rotation_leaves_both_segments_intact() {
        let d = Arc::new(Device::new(DeviceProfile::RAM));
        let w = Wal::new(Arc::clone(&d));
        w.log(b"k1", &MemEntry::Record(b"a".to_vec())).unwrap();
        d.set_fault_plan(FaultPlan::new(4).fail_nth(IoOp::Rotate, 1, FaultKind::Transient));
        assert!(w.rotate().is_err());
        d.clear_fault_plan();
        // Nothing moved: the active segment still covers the record, and a
        // retried rotation works.
        assert_eq!(w.replay().unwrap().len(), 1);
        w.rotate().unwrap();
        assert_eq!(w.replay().unwrap().len(), 1);
    }

    #[test]
    fn tear_tail_affects_active_segment_only() {
        let w = wal();
        w.log(b"flushed", &MemEntry::Record(b"x".to_vec())).unwrap();
        w.rotate().unwrap();
        w.log(b"torn", &MemEntry::Record(b"y-longer-payload".to_vec())).unwrap();
        w.tear_tail(4);
        let ops = w.replay().unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].0, b"flushed".to_vec());
    }
}
