//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment for this repository cannot reach crates.io, so this
//! shim provides the slice of criterion the `tc_bench` benches use:
//! [`Criterion`], [`Criterion::benchmark_group`], [`BenchmarkGroup`] with
//! `sample_size`/`bench_function`/`finish`, [`Bencher::iter`], [`black_box`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — wall-clock mean over `sample_size`
//! samples after a short warm-up — but the reporting format (name, time per
//! iteration) is stable enough to eyeball regressions. Anything fancier
//! belongs in the real criterion once the environment has network access.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; filtering/flags are not implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
        self
    }

    pub fn final_summary(self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
    warmed_up: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up per benchmark (primes caches/allocator),
        // matching real criterion — not one per sample.
        if !self.warmed_up {
            black_box(routine());
            self.warmed_up = true;
        }
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher { samples: Vec::with_capacity(sample_size), warmed_up: false };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    if bencher.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort();
    let mean: Duration = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    let median = sorted[sorted.len() / 2];
    println!("{name:<40} time: [mean {:>12?}  median {:>12?}  n={}]", mean, median, sorted.len());
}

/// Mirrors `criterion_group!(name, target, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion_main!(group, ...)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0usize;
        c.bench_function("smoke", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("inner", |b| {
            calls += 1;
            b.iter(|| black_box(2 * 2))
        });
        group.finish();
        assert_eq!(calls, 2);
    }
}
