//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this vendored shim provides exactly the surface the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic 64-bit PRNG (xoshiro256++ seeded via
//!   SplitMix64, the same construction the real `rand` documents for seeding)
//! * [`SeedableRng::seed_from_u64`]
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], [`Rng::fill_bytes`]
//!
//! Statistical quality matches xoshiro256++; the streams are *not* bit-equal
//! to upstream `rand 0.8`, which is fine for this workspace: every consumer
//! seeds explicitly and only relies on determinism within one binary.

use core::ops::{Range, RangeInclusive};

/// Core RNG abstraction: a source of uniformly-distributed 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

/// An RNG that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value domain via
/// [`Rng::gen`]. Mirrors `rand::distributions::Standard` coverage for the
/// primitives this workspace draws.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)`, using the top 53 bits as the real crate does.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)`, using 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Map a uniform 64-bit word onto `[0, s)` with one widening multiply
/// (Lemire reduction, no division; bias is at most s/2^64 — negligible for
/// the workload-generation use here).
fn lemire(word: u64, s: u64) -> u64 {
    ((word as u128 * s as u128) >> 64) as u64
}

// Span arithmetic runs in the same-width *unsigned* counterpart `$u`: the
// bit-pattern cast makes `end - start` wrap to the true span even for signed
// ranges wider than `$t::MAX` (e.g. `i64::MIN..0`), where computing in the
// signed domain would overflow or sign-extend garbage.
macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let offset = lemire(rng.next_u64(), span);
                ((self.start as $u).wrapping_add(offset as $u)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                let offset = match span.checked_add(1) {
                    Some(s) => lemire(rng.next_u64(), s),
                    // Span covers the whole 64-bit domain: every word is valid.
                    None => rng.next_u64(),
                };
                ((start as $u).wrapping_add(offset as $u)) as $t
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                // The two roundings in start + unit*(end-start) can land on
                // `end` itself for unrepresentable endpoints; clamp to keep
                // the half-open contract.
                let v = self.start + unit * (self.end - self.start);
                v.clamp(self.start, self.end.next_down())
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                (start + unit * (end - start)).clamp(start, end)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// The user-facing RNG extension trait.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors
            // (and used by rand's seed_from_u64).
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3i64..17);
            assert!((-3..17).contains(&v));
            let u = rng.gen_range(0usize..=5);
            assert!(u <= 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_signed_spans_wider_than_i64_max() {
        // Regression: spans wider than i64::MAX used to sign-extend through
        // the wide cast, yielding out-of-range values (i64::MIN..0 returned
        // non-negatives) or overflowing on the full inclusive domain.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(rng.gen_range(i64::MIN..0) < 0);
            let v = rng.gen_range(i64::MIN..=i64::MAX); // must not panic
            let _ = v;
            let w = rng.gen_range(0u64..=u64::MAX); // full unsigned domain
            let _ = w;
            let b = rng.gen_range(i8::MIN..=i8::MAX);
            let _ = b;
            assert!(rng.gen_range(i64::MIN..i64::MAX) < i64::MAX);
        }
        // The full-domain paths actually cover the domain (statistically:
        // both halves show up quickly).
        let mut neg = false;
        let mut pos = false;
        for _ in 0..64 {
            let v = rng.gen_range(i64::MIN..=i64::MAX);
            neg |= v < 0;
            pos |= v >= 0;
        }
        assert!(neg && pos, "full i64 domain should hit both signs");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
