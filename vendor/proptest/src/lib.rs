//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this vendored shim implements the slice of proptest the workspace's
//! property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_recursive`, and `boxed`
//! * [`arbitrary::any`] for primitives and byte arrays
//! * integer/float range strategies, tuple strategies, [`strategy::Just`]
//! * string strategies from a regex-lite pattern (`"[a-z]{1,8}"` style)
//! * [`collection::vec`] and [`collection::btree_map`]
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`], and
//!   [`prop_assert_eq!`] macros, plus `ProptestConfig::with_cases`
//!
//! Design deltas vs upstream, chosen for an offline test harness:
//!
//! * **No shrinking.** A failing case panics with the generated inputs via
//!   the standard assert messages; `cases` inputs are tried per test.
//! * **Deterministic seeding.** Each `proptest!` test derives its RNG seed
//!   from its own function name (FNV-1a), so failures reproduce exactly
//!   across runs and machines — the offline stand-in for proptest's
//!   persisted failure files.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::sync::Arc;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking phase:
    /// a strategy simply produces a fresh value from the test RNG.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Recursive strategies: generates either a value from `self` (the
        /// leaf strategy) or from `recurse` applied to the strategy itself,
        /// nesting at most `depth` levels.
        ///
        /// `desired_size` and `expected_branch_size` are accepted for API
        /// compatibility; depth alone bounds recursion here.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let branch = recurse(strat).boxed();
                // 1:2 leaf-to-branch odds at every level keeps expected tree
                // size finite while still exercising deep nesting.
                strat = Union::new(vec![(1, leaf.clone()), (2, branch)]).boxed();
            }
            strat
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn dyn_new_value(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    /// A type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T: 'static> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.dyn_new_value(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Weighted choice between strategies (the engine behind `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total_weight > 0, "prop_oneof! weights sum to zero");
            Union { arms, total_weight }
        }
    }

    impl<T: 'static> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let mut pick = rand::Rng::gen_range(rng, 0..self.total_weight);
            for (weight, arm) in &self.arms {
                if pick < *weight as u64 {
                    return arm.new_value(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }
    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// String-literal strategies: `"[a-z]{1,8}"` generates matching strings.
    impl Strategy for &'static str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            crate::string::generate(self, rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy, via [`any`].
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn new_value(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    macro_rules! arbitrary_via_rand {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rand::Rng::gen(rng)
                }
            }
        )*};
    }
    arbitrary_via_rand!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rand::Rng::gen(rng)
        }
    }

    // Floats: cover zero, exact small integers, and uniform continuous
    // values at two scales. Always finite — the workspace's roundtrip
    // properties are stated over finite numerics (upstream proptest's
    // `any::<f64>()` similarly defaults to non-NaN coverage).
    macro_rules! arbitrary_float {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    match rand::Rng::gen_range(rng, 0u32..8) {
                        0 => 0.0,
                        1 | 2 => rand::Rng::gen_range(rng, -1_000i64..1_000) as $t,
                        3..=5 => rand::Rng::gen_range(rng, -1.0 as $t..1.0),
                        _ => rand::Rng::gen_range(rng, -1.0e6 as $t..1.0e6),
                    }
                }
            }
        )*};
    }
    arbitrary_float!(f32, f64);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::{Range, RangeInclusive};

    /// Accepted element-count specifications (a subset of upstream's).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { min: r.start, max_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max_inclusive: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_inclusive: n }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(rng, self.min..=self.max_inclusive)
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            // Duplicate keys collapse, so the result can come in under the
            // requested minimum — the same best-effort upstream makes when
            // the key domain is small.
            let len = self.size.pick(rng);
            (0..len).map(|_| (self.key.new_value(rng), self.value.new_value(rng))).collect()
        }
    }
}

pub mod string {
    use crate::test_runner::TestRng;

    /// Generate a string matching a regex-lite pattern: sequences of literal
    /// characters or `[...]` classes (with `a-z` ranges), each optionally
    /// quantified by `{n}`, `{m,n}`, `?`, `*`, or `+`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let atoms = parse(pattern);
        let mut out = String::new();
        for (chars, min, max) in &atoms {
            let count = rand::Rng::gen_range(rng, *min..=*max);
            for _ in 0..count {
                let idx = rand::Rng::gen_range(rng, 0..chars.len());
                out.push(chars[idx]);
            }
        }
        out
    }

    /// Each atom is (candidate characters, min repeats, max repeats).
    fn parse(pattern: &str) -> Vec<(Vec<char>, usize, usize)> {
        let mut atoms = Vec::new();
        let mut it = pattern.chars().peekable();
        while let Some(c) = it.next() {
            let chars = match c {
                '[' => {
                    let mut set = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let c = it
                            .next()
                            .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                        match c {
                            ']' => break,
                            '-' if prev.is_some() && it.peek().is_some_and(|&n| n != ']') => {
                                let start = prev.take().unwrap();
                                let end = it.next().unwrap();
                                assert!(
                                    start <= end,
                                    "bad range {start}-{end} in pattern {pattern:?}"
                                );
                                // `start` was already pushed as a literal;
                                // extend with the rest of the range.
                                set.extend(
                                    ((start as u32 + 1)..=(end as u32)).filter_map(char::from_u32),
                                );
                            }
                            '\\' => {
                                let esc = it.next().expect("dangling escape");
                                set.push(esc);
                                prev = Some(esc);
                            }
                            other => {
                                set.push(other);
                                prev = Some(other);
                            }
                        }
                    }
                    assert!(!set.is_empty(), "empty character class in {pattern:?}");
                    set
                }
                '\\' => vec![it.next().expect("dangling escape")],
                other => vec![other],
            };
            let (min, max) = match it.peek() {
                Some('{') => {
                    it.next();
                    let mut spec = String::new();
                    for c in it.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad {m,n} quantifier"),
                            hi.trim().parse().expect("bad {m,n} quantifier"),
                        ),
                        None => {
                            let n = spec.trim().parse().expect("bad {n} quantifier");
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    it.next();
                    (0, 1)
                }
                Some('*') => {
                    it.next();
                    (0, 8)
                }
                Some('+') => {
                    it.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            assert!(min <= max, "bad quantifier in pattern {pattern:?}");
            atoms.push((chars, min, max));
        }
        atoms
    }
}

pub mod test_runner {
    /// The RNG handed to strategies. Deterministic; see crate docs.
    pub type TestRng = rand::rngs::StdRng;

    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Seed derivation: FNV-1a over the test's function name, so each test
    /// gets an independent but fully reproducible stream.
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        <TestRng as rand::SeedableRng>::seed_from_u64(seed)
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// The test-defining macro. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `#[test] fn name(pat in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::rng_for(stringify!($name));
            // Strategies are built once per test, as in upstream proptest —
            // not once per case (prop_recursive trees are pricey to build).
            let __strategies = ($($strat,)+);
            for __case in 0..__config.cases {
                let ($($arg,)+) = {
                    let ($(ref $arg,)+) = __strategies;
                    ($($crate::strategy::Strategy::new_value($arg, &mut __rng),)+)
                };
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_maps(x in 0i32..10, s in "[a-z]{1,4}") {
            prop_assert!((0..10).contains(&x));
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }

        #[test]
        fn collections(v in crate::collection::vec(any::<u8>(), 0..16),
                       m in crate::collection::btree_map("[a-z]{1,2}", any::<bool>(), 0..6)) {
            prop_assert!(v.len() < 16);
            prop_assert!(m.len() < 6);
        }
    }

    #[test]
    fn oneof_weights_and_recursion() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(i32),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i32..100).prop_map(Tree::Leaf).prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut rng = crate::test_runner::rng_for("recursion");
        for _ in 0..200 {
            let t = strat.new_value(&mut rng);
            assert!(depth(&t) <= 4 + 1, "depth bound violated: {t:?}");
        }
        let union = prop_oneof![3 => Just(1u8), 1 => Just(2u8)];
        let mut ones = 0;
        for _ in 0..400 {
            if union.new_value(&mut rng) == 1 {
                ones += 1;
            }
        }
        assert!(ones > 200, "weighting looks wrong: {ones}/400");
    }
}
