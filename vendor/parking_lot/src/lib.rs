//! Offline, API-compatible subset of the `parking_lot` crate, backed by
//! `std::sync`.
//!
//! The build environment for this repository cannot reach crates.io. The
//! workspace only relies on parking_lot's *interface* (infallible `lock()` /
//! `read()` / `write()` with no poison `Result`s), not its performance
//! characteristics, so delegating to the standard library is sufficient.
//! A lock poisoned by a panicking holder panics on the next acquisition,
//! which matches parking_lot's practical behavior for this workspace: its
//! real locks ignore poisoning, but every panic in these tests is fatal to
//! the test anyway.

use std::sync::{self, LockResult};

/// Mirror of `parking_lot::Mutex` with infallible [`Mutex::lock`].
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison_ref(self.0.get_mut())
    }
}

/// Mirror of `parking_lot::RwLock` with infallible [`RwLock::read`] /
/// [`RwLock::write`].
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.0.try_read().ok()
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.0.try_write().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison_ref(self.0.get_mut())
    }
}

fn unpoison<G>(result: LockResult<G>) -> G {
    result.unwrap_or_else(|_| panic!("lock poisoned by a panicking holder"))
}

fn unpoison_ref<G>(result: LockResult<G>) -> G {
    unpoison(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = Arc::new(RwLock::new(0usize));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                thread::spawn(move || {
                    for _ in 0..100 {
                        *l.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 400);
    }
}
