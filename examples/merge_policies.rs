//! Merge policies: the compaction design space on one dataset.
//!
//! Ingests the same update-heavy stream under every policy in the
//! `MergePolicy` registry and prints the trade each one makes: write
//! amplification (bytes rewritten by merges, on top of the flushed bytes)
//! against tree shape (component count — a proxy for scan cost). No policy
//! wins both; that is the point of making compaction configurable.
//!
//! Run with: `cargo run --example merge_policies`

use std::sync::Arc;

use asterix_tc::prelude::*;

fn run(policy: MergePolicy) -> Result<(), AdmError> {
    let config = DatasetConfig::new("Events", "id")
        .with_format(StorageFormat::Inferred)
        .with_memtable_budget(16 * 1024)
        .with_merge_policy(policy);
    let device = Arc::new(Device::new(DeviceProfile::NVME_SSD));
    let cache = Arc::new(BufferCache::new(4096));
    let events = Dataset::new(config, device, cache);

    let mut writer = events.writer();
    for i in 0..2000i64 {
        writer.upsert(&parse(&format!(
            r#"{{"id": {}, "seq": {i}, "payload": "event body #{i}"}}"#,
            // Every 4th write revisits an older key, so merges constantly
            // reconcile overlapping versions.
            if i % 4 == 3 { i / 2 } else { i }
        ))?)?;
    }
    drop(writer);
    events.flush()?;

    let stats = events.lsm_stats();
    let comps = events.primary().components().len();
    println!(
        "  {:<14} write amp {:>5.2}x   components {:>3}   merges {:>3}   levels {:?}",
        policy.name(),
        stats.write_amplification(),
        comps,
        stats.merges,
        events.primary().level_counts(),
    );
    Ok(())
}

fn main() -> Result<(), AdmError> {
    println!("2000 upserts (25% updates), 16 KiB memtable, per policy:\n");
    for policy in MergePolicy::matrix() {
        run(policy)?;
    }
    println!(
        "\nPolicies are interchangeable for correctness (proven by the \
         policy-equivalence property test); pick by workload:\n\
         low write amp for ingest-heavy, few components for scan-heavy."
    );
    Ok(())
}
