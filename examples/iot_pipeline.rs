//! IoT pipeline: numeric sensor telemetry, secondary indexes, and why
//! semantic compaction beats syntactic compression on this shape of data.
//!
//! Sensor reports are numbers wrapped in repetitive structure — the regime
//! where the paper's Fig 16c shows the tuple compactor at its best (4.3×
//! over schema-less storage before any compression).
//!
//! Run with: `cargo run --release --example iot_pipeline`

use std::sync::Arc;

use asterix_tc::prelude::*;
use tc_datagen::{sensors::SensorsGen, Generator};
use tc_query::paper_queries as q;

fn main() -> Result<(), AdmError> {
    let n = 2000;

    // One partition with a secondary index on report_time.
    let build = |format: StorageFormat, compression: CompressionScheme| {
        let config = DatasetConfig::new("Sensors", "id")
            .with_format(format)
            .with_compression(compression)
            .with_secondary_index("report_time");
        let device = Arc::new(Device::new(DeviceProfile::NVME_SSD));
        let cache = Arc::new(BufferCache::new(8192));
        let ds = Dataset::new(config, device, cache);
        let mut gen = SensorsGen::new(7);
        let mut writer = ds.writer();
        for _ in 0..n {
            writer.insert(&gen.next_record()).expect("insert");
        }
        drop(writer);
        ds.flush().unwrap();
        ds.force_full_merge().unwrap();
        ds
    };

    println!("ingesting {n} sensor reports (118 readings each)…\n");
    println!("{:<28} {:>14}", "configuration", "on-disk bytes");
    let mut inferred_plain = None;
    for (format, compression, label) in [
        (StorageFormat::Open, CompressionScheme::None, "schema-less"),
        (StorageFormat::Open, CompressionScheme::Snappy, "schema-less + snappy"),
        (StorageFormat::Inferred, CompressionScheme::None, "compacted"),
        (StorageFormat::Inferred, CompressionScheme::Snappy, "compacted + snappy"),
    ] {
        let ds = build(format, compression);
        println!("{label:<28} {:>14}", ds.disk_bytes());
        if format == StorageFormat::Inferred && compression == CompressionScheme::None {
            inferred_plain = Some(ds);
        }
    }

    let ds = inferred_plain.expect("built above");

    // Secondary-index window query: one hour of reports.
    let start = 1_556_496_000_000i64;
    let hour = ds.secondary_range(start, start + 3_600_000)?;
    println!("\nreports in the first hour: {}", hour.len());

    // The paper's Q3: top sensors by average reading, via the partitioned
    // query engine.
    let res = tc_query::exec::execute(
        &[&ds],
        &q::sensors_q3(QueryOptions::default()),
        &ExecOptions::default(),
    )?;
    println!("top sensors by average temperature:");
    for row in res.rows.iter().take(5) {
        println!("  sensor {:>4}: {:.2}°", row[0].as_i64().unwrap(), row[1].as_f64().unwrap());
    }
    Ok(())
}
