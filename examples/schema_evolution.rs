//! Schema evolution under fire: type changes, deletes, upserts, crashes.
//!
//! The data scientist story from the paper's introduction: a feed whose
//! structure drifts over time — new fields appear, a field changes type,
//! old records get deleted or upserted — while the system stays online and
//! the inferred schema tracks reality. Ends with a crash and recovery,
//! demonstrating §3.1.2: invalid components are discarded, the newest valid
//! schema is reloaded, and the WAL replays.
//!
//! Run with: `cargo run --example schema_evolution`

use std::sync::Arc;

use asterix_tc::prelude::*;

fn schema_fields(ds: &Dataset) -> Vec<String> {
    let schema = ds.schema_snapshot().expect("inferred");
    let asterix_tc::schema::SchemaNode::Object { fields, .. } = schema.node(schema.root()) else {
        unreachable!()
    };
    let mut names: Vec<String> =
        fields.iter().map(|(fid, _)| schema.field_name(*fid).unwrap_or("?").to_owned()).collect();
    names.sort();
    names
}

fn main() -> Result<(), AdmError> {
    let config = DatasetConfig::new("Events", "id")
        .with_format(StorageFormat::Inferred)
        .with_primary_key_index(true);
    let device = Arc::new(Device::new(DeviceProfile::NVME_SSD));
    let cache = Arc::new(BufferCache::new(2048));
    let events = Dataset::new(config, device, cache);
    let mut writer = events.writer();

    // Era 1: events carry a numeric `temperature`.
    for i in 0..100 {
        writer.insert(&parse(&format!(
            r#"{{"id": {i}, "source": "probe-{}", "temperature": {}}}"#,
            i % 4,
            15 + i % 20
        ))?)?;
    }
    events.flush().unwrap();
    println!("era 1 fields: {:?}", schema_fields(&events));

    // Era 2: the producer starts sending `temperature` as a string and adds
    // a `unit` field. No DDL, no downtime — the schema grows a union.
    for i in 100..200 {
        writer.insert(&parse(&format!(
            r#"{{"id": {i}, "source": "probe-{}", "temperature": "{}C", "unit": "celsius"}}"#,
            i % 4,
            15 + i % 20
        ))?)?;
    }
    events.flush().unwrap();
    println!("era 2 fields: {:?}", schema_fields(&events));

    // Era 3: the era-2 records are re-keyed by an upsert back to numeric;
    // the anti-schemas decrement the string branch away.
    for i in 100..200 {
        writer.upsert(&parse(&format!(
            r#"{{"id": {i}, "source": "probe-{}", "temperature": {}, "unit": "celsius"}}"#,
            i % 4,
            15 + i % 20
        ))?)?;
    }
    events.flush().unwrap();
    let schema = events.schema_snapshot().unwrap();
    let (_, temp) = schema.lookup_field(schema.root(), "temperature").unwrap();
    println!(
        "era 3: temperature matches string? {}  (union collapsed back)",
        schema.node(temp).matches_tag(TypeTag::String)
    );

    // Crash mid-stream: unflushed records live only in the WAL.
    for i in 200..250 {
        writer.insert(&parse(&format!(r#"{{"id": {i}, "burst": true}}"#))?)?;
    }
    drop(writer);
    println!("\n-- crash! --");
    events.simulate_crash();
    let (removed, replayed) = events.recover().unwrap();
    println!("recovery: {removed} invalid components removed, {replayed} WAL ops replayed");
    events.flush().unwrap();
    println!("post-recovery fields: {:?}", schema_fields(&events));
    println!("record count: {}", events.scan_values()?.len());
    assert_eq!(events.scan_values()?.len(), 250);
    Ok(())
}
