//! Social-media analytics: the paper's Twitter workload end to end.
//!
//! Ingests a synthetic tweet firehose through a hash-partitioned cluster in
//! all three storage configurations, compares on-disk sizes, then runs the
//! paper's four analytical queries (Appendix A.1) on the inferred dataset.
//!
//! Run with: `cargo run --release --example social_analytics`

use asterix_tc::prelude::*;
use tc_datagen::{twitter::TwitterGen, Generator};
use tc_query::paper_queries as q;

fn main() -> Result<(), AdmError> {
    let n = 5000;
    println!("generating {n} tweets…");

    // ---- storage comparison (Fig 16a in miniature) ----
    let mut sizes = Vec::new();
    for format in [StorageFormat::Open, StorageFormat::Inferred] {
        let cluster = Cluster::create_dataset(
            ClusterConfig::default(),
            DatasetConfig::new("Tweets", "id")
                .with_format(format)
                .with_compression(CompressionScheme::Snappy),
        );
        let mut gen = TwitterGen::new(42);
        let records: Vec<Value> = (0..n).map(|_| gen.next_record()).collect();
        let report = cluster.feed(records, FeedMode::Insert)?;
        cluster.flush_all().unwrap();
        cluster.merge_all().unwrap();
        println!(
            "{:>9}: {:>10} bytes on disk, ingested in {:?} (+{:?} simulated IO)",
            format.name(),
            cluster.total_disk_bytes(),
            report.wall,
            report.io,
        );
        sizes.push((format, cluster.total_disk_bytes()));
        if format == StorageFormat::Inferred {
            run_queries(&cluster)?;
        }
    }
    let open = sizes[0].1 as f64;
    let inferred = sizes[1].1 as f64;
    println!(
        "\ncompacted storage is {:.1}x smaller than schema-less (compressed)",
        open / inferred
    );
    Ok(())
}

fn run_queries(cluster: &Cluster) -> Result<(), AdmError> {
    let opts = QueryOptions::default();
    let exec = ExecOptions::default();

    println!("\nQ1 — count(*):");
    let res = cluster.query(&q::twitter_q1(opts), &exec)?;
    println!("  {} tweets", q::single_i64(&res.rows).unwrap());

    println!("Q2 — top users by average tweet length:");
    let res = cluster.query(&q::twitter_q2(opts), &exec)?;
    for row in res.rows.iter().take(3) {
        println!("  {} avg {:.1}", row[0], row[1].as_f64().unwrap());
    }

    println!("Q3 — top users tweeting #jobs:");
    let res = cluster.query(&q::twitter_q3(opts), &exec)?;
    for row in res.rows.iter().take(3) {
        println!("  {} with {} tweets", row[0], row[1].as_i64().unwrap());
    }
    println!(
        "  (schema broadcast shipped {} bytes across {} partitions)",
        res.stats.broadcast_bytes, res.stats.partitions
    );

    println!("Q4 — full scan ordered by timestamp:");
    let res = cluster.query(&q::twitter_q4(opts), &exec)?;
    println!("  {} records sorted", res.rows.len());

    // The same Q2, written as SQL++ text through the front end.
    let text = r#"
        SELECT uname, a
        FROM Tweets t
        GROUP BY t.user.name AS uname
        WITH a AS avg(length(t.text))
        ORDER BY a DESC
        LIMIT 3
    "#;
    let compiled = tc_query::sqlpp::compile(text, opts)?;
    let res = cluster.query(&compiled, &exec)?;
    println!("Q2 again, via the SQL++ front end:");
    for row in &res.rows {
        println!("  {} avg {:.1}", row[0], row[1].as_f64().unwrap());
    }
    Ok(())
}
