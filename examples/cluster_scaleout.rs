//! Scale-out: independent per-partition schemas and the schema broadcast.
//!
//! Spins up clusters of growing size, ingests proportional data, and shows
//! (a) partition schemas evolving independently with no coordination and
//! (b) the schema broadcast that repartitioning queries trigger (§3.4.1).
//!
//! Run with: `cargo run --release --example cluster_scaleout`

use asterix_tc::prelude::*;
use tc_datagen::{twitter::TwitterGen, Generator};
use tc_query::paper_queries as q;

fn main() -> Result<(), AdmError> {
    for nodes in [1usize, 2, 4] {
        let cluster = Cluster::create_dataset(
            ClusterConfig {
                nodes,
                partitions_per_node: 2,
                device: DeviceProfile::NVME_SSD,
                cache_budget_per_node: 16 * 1024 * 1024,
            },
            DatasetConfig::new("Tweets", "id")
                .with_format(StorageFormat::Inferred)
                .with_compression(CompressionScheme::Snappy),
        );
        let n = 2000 * nodes;
        let mut gen = TwitterGen::new(3);
        let records: Vec<Value> = (0..n).map(|_| gen.next_record()).collect();
        let report = cluster.feed(records, FeedMode::Insert)?;
        cluster.flush_all().unwrap();

        // Each partition inferred its own schema, independently.
        let node_counts: Vec<usize> = cluster
            .partitions()
            .iter()
            .map(|p| p.schema_snapshot().map(|s| s.num_live_nodes()).unwrap_or(0))
            .collect();

        // A repartitioning query (group-by) triggers the broadcast.
        let res =
            cluster.query(&q::twitter_q2(QueryOptions::default()), &ExecOptions::default())?;

        println!(
            "{nodes} node(s): {n} tweets in {:?} (+{:?} IO) | schema nodes/partition {:?} | \
             Q2 scanned {} rows, broadcast {} bytes",
            report.wall, report.io, node_counts, res.stats.rows_scanned, res.stats.broadcast_bytes,
        );
        assert_eq!(res.stats.rows_scanned as usize, n);
    }
    Ok(())
}
