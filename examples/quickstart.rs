//! Quickstart: the paper's running example (Figures 8–11).
//!
//! Creates an `Employee` dataset with the tuple compactor enabled, ingests
//! the records from Fig 9, and walks through what the framework does at
//! each LSM lifecycle event: schema inference at flush, union promotion on
//! type change, schema shrinking on delete.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use asterix_tc::prelude::*;
use asterix_tc::schema::SchemaNode;

fn print_schema(ds: &Dataset, when: &str) {
    let schema = ds.schema_snapshot().expect("inferred dataset has a schema");
    println!("\nschema {when}:");
    let root = schema.root();
    let SchemaNode::Object { fields, .. } = schema.node(root) else {
        unreachable!("root is an object")
    };
    if fields.is_empty() {
        println!("  (empty)");
    }
    for (fid, node_id) in fields {
        let name = schema.field_name(*fid).unwrap_or("?");
        let node = schema.node(*node_id);
        let ty = match node {
            SchemaNode::Union { children, .. } => {
                let parts: Vec<String> = children.iter().map(|(t, _)| t.to_string()).collect();
                format!("union({})", parts.join(", "))
            }
            n => n.type_tag().map(|t| t.to_string()).unwrap_or_default(),
        };
        println!("  {name}: {ty}  (counter {})", node.counter());
    }
}

fn main() -> Result<(), AdmError> {
    // CREATE TYPE EmployeeType AS OPEN { id: int };
    // CREATE DATASET Employee(EmployeeType) PRIMARY KEY id
    //   WITH {"tuple-compactor-enabled": true};              (paper Fig 8)
    let config = DatasetConfig::new("Employee", "id").with_format(StorageFormat::Inferred);
    let device = Arc::new(Device::new(DeviceProfile::NVME_SSD));
    let cache = Arc::new(BufferCache::new(4096));
    let employee = Dataset::new(config, device, cache);
    // One logical writer per partition, enforced by the token.
    let mut writer = employee.writer();

    // ---- first flush (Fig 9a) ----
    writer.insert(&parse(r#"{"id": 0, "name": "Kim", "age": 26}"#)?)?;
    writer.insert(&parse(r#"{"id": 1, "name": "John", "age": 22}"#)?)?;
    employee.flush().unwrap();
    println!("flushed C0: 2 records, schema inferred during the flush");
    print_schema(&employee, "after first flush (paper S0)");

    // ---- second flush: age changes type (Fig 9b) ----
    writer.insert(&parse(r#"{"id": 2, "name": "Ann"}"#)?)?;
    writer.insert(&parse(r#"{"id": 3, "name": "Bob", "age": "old"}"#)?)?;
    employee.flush().unwrap();
    println!("\nflushed C1: 'age' seen as string → promoted to a union");
    print_schema(&employee, "after second flush (paper S1)");

    // ---- merge: the newest schema covers both components (Fig 9c) ----
    employee.force_full_merge().unwrap();
    println!("\nmerged [C0,C1]: kept the newest schema, no re-inference");
    println!("components: {}", employee.primary().components().len());

    // ---- records stay queryable, compacted on disk ----
    for pk in 0..4 {
        let v = employee.get(pk)?.expect("present");
        println!("  get({pk}) = {v}");
    }

    // ---- delete: anti-matter + anti-schema shrink the schema (Fig 11) ----
    writer.delete(3)?;
    employee.flush().unwrap();
    print_schema(&employee, "after deleting id 3 (union collapses back to int)");

    println!("\non-disk size: {} bytes", employee.disk_bytes());
    Ok(())
}
