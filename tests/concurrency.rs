//! Concurrency stress suite: multi-threaded ingestion with concurrent
//! readers while background flush/merge pipelines run.
//!
//! What "correct" means here:
//!
//! * **No torn records** — every record a reader materializes decodes
//!   cleanly and is internally consistent (its payload matches its key).
//! * **No resurrection** — once a reader observes a deleted-forever key as
//!   absent, no later read may see it again (anti-matter never un-happens).
//! * **Snapshot sanity** — scans return strictly ascending unique keys.
//! * **Oracle equivalence** — after quiescing, the concurrent run's final
//!   state equals a single-threaded synchronous run of the same operations.
//!
//! Every test runs under a watchdog: a deadlock fails fast with a panic
//! instead of hanging the suite (CI also wraps the binary in `timeout`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use asterix_tc::prelude::*;

// ---------------------------------------------------------------------
// Watchdog: fail fast instead of hanging on a deadlock
// ---------------------------------------------------------------------

fn with_watchdog<F: FnOnce() + Send + 'static>(limit: Duration, name: &str, body: F) {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::Builder::new()
        .name(format!("stress-{name}"))
        .spawn(move || {
            body();
            let _ = tx.send(());
        })
        .expect("spawn stress body");
    match rx.recv_timeout(limit) {
        // Completed — or panicked (sender dropped mid-unwind): join either
        // way so a real assertion failure propagates with its own message
        // instead of being misreported as a deadlock.
        Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("{name}: exceeded {limit:?} — possible deadlock in the flush/merge pipeline")
        }
    }
}

// ---------------------------------------------------------------------
// Workload helpers
// ---------------------------------------------------------------------

fn record(pk: i64, version: u64) -> Value {
    parse(&format!(
        r#"{{"id": {pk}, "version": {version}, "name": "user-{pk}", "nested": {{"score": {}, "tags": ["a", "b"]}}}}"#,
        pk % 97
    ))
    .unwrap()
}

fn stress_config(background: bool) -> DatasetConfig {
    DatasetConfig::new("Stress", "id")
        .with_format(StorageFormat::Inferred)
        .with_memtable_budget(8 * 1024) // tiny: constant flush pressure
        .with_merge_policy(MergePolicy::Prefix {
            max_mergeable_size: 16 * 1024 * 1024,
            max_tolerable_components: 3,
        })
        .with_background_maintenance(background)
}

fn make_dataset(background: bool) -> Dataset {
    Dataset::new(
        stress_config(background),
        Arc::new(Device::new(DeviceProfile::RAM)),
        Arc::new(BufferCache::new(4096)),
    )
}

/// Check one materialized record for internal consistency ("not torn").
fn assert_untorn(v: &Value) {
    let pk = v.get_field("id").and_then(Value::as_i64).expect("record must carry its id");
    assert_eq!(
        v.get_field("name").and_then(Value::as_str),
        Some(format!("user-{pk}")).as_deref(),
        "payload must match its key — torn record?"
    );
    let nested = v.get_field("nested").expect("nested object present");
    assert_eq!(nested.get_field("score").and_then(Value::as_i64), Some(pk % 97));
}

// ---------------------------------------------------------------------
// 1. Readers vs. one writer with background flush/merge
// ---------------------------------------------------------------------

#[test]
fn concurrent_reads_during_background_ingest() {
    with_watchdog(Duration::from_secs(120), "reads-during-ingest", || {
        const PRELOADED: i64 = 400; // keys 0..400 inserted up front
        const DELETED: i64 = 200; // keys 0..200 deleted during the run, never reinserted
        const UPSERTED: i64 = 300; // keys 300..400 upserted during the run
        const FRESH: i64 = 1200; // keys 1000..2200 inserted during the run
        let ds = Arc::new(make_dataset(true));
        {
            let mut w = ds.writer();
            for pk in 0..PRELOADED {
                w.insert(&record(pk, 0)).unwrap();
            }
        }
        ds.flush().unwrap();

        let stop = Arc::new(AtomicBool::new(false));
        let scan_rounds = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            // The single writer: fresh inserts, upserts of stable keys, and
            // deletes of the doomed range, interleaved.
            let writer_ds = Arc::clone(&ds);
            let writer_stop = Arc::clone(&stop);
            scope.spawn(move || {
                // The writer thread claims the partition's token: a second
                // claimant anywhere in this scope would panic, which is
                // exactly the one-writer contract under test.
                let mut w = writer_ds.writer();
                let mut deleted = 0i64;
                for i in 0..FRESH {
                    w.insert(&record(1000 + i, 1)).unwrap();
                    if i % 3 == 0 && deleted < DELETED {
                        assert!(w.delete(deleted).unwrap(), "doomed key existed");
                        deleted += 1;
                    }
                    if i % 7 == 0 {
                        // Upserts churn schema counters under the readers.
                        w.upsert(&record(UPSERTED + (i % (PRELOADED - UPSERTED)), 2)).unwrap();
                    }
                }
                assert_eq!(deleted, DELETED);
                writer_stop.store(true, Ordering::SeqCst);
            });

            // Readers: point gets + full scans, each validating snapshots.
            for r in 0..3i64 {
                let reader_ds = Arc::clone(&ds);
                let reader_stop = Arc::clone(&stop);
                let rounds = Arc::clone(&scan_rounds);
                scope.spawn(move || {
                    // Keys this reader has seen dead stay dead (deletes are
                    // never followed by reinsertions for 0..DELETED).
                    let mut seen_dead = vec![false; DELETED as usize];
                    while !reader_stop.load(Ordering::SeqCst) {
                        for pk in ((r * 13)..PRELOADED).step_by(29) {
                            match reader_ds.get(pk).unwrap() {
                                Some(v) => {
                                    assert_untorn(&v);
                                    assert!(
                                        pk >= DELETED || !seen_dead[pk as usize],
                                        "key {pk} resurrected after observed deletion"
                                    );
                                }
                                None => {
                                    // Deleted keys may (and eventually do)
                                    // read absent; upserted keys may read
                                    // absent transiently mid-upsert
                                    // (delete-then-insert is not atomic —
                                    // documented read skew). Untouched
                                    // keys must never disappear.
                                    assert!(
                                        !(DELETED..UPSERTED).contains(&pk),
                                        "untouched key {pk} must stay live"
                                    );
                                    if pk < DELETED {
                                        seen_dead[pk as usize] = true;
                                    }
                                }
                            }
                        }
                        let values = reader_ds.scan_values().unwrap();
                        let mut prev = i64::MIN;
                        for v in &values {
                            assert_untorn(v);
                            let pk = v.get_field("id").unwrap().as_i64().unwrap();
                            assert!(pk > prev, "scan keys must be strictly ascending");
                            prev = pk;
                            if pk < DELETED {
                                assert!(
                                    !seen_dead[pk as usize],
                                    "scan resurrected key {pk} after observed deletion"
                                );
                            }
                        }
                        rounds.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert!(
            scan_rounds.load(Ordering::Relaxed) >= 3,
            "readers must have made progress while the writer ran"
        );

        // Quiesce and compare against a synchronous single-threaded oracle.
        ds.await_quiescent();
        ds.flush().unwrap();
        let stats = ds.lsm_stats();
        assert!(stats.flushes > 0, "background flushes must have fired");
        assert_eq!(stats.writer_stall_nanos, 0, "writer never flushed inline");

        let oracle = make_dataset(false);
        let mut ow = oracle.writer();
        for pk in 0..PRELOADED {
            ow.insert(&record(pk, 0)).unwrap();
        }
        oracle.flush().unwrap();
        let mut deleted = 0i64;
        for i in 0..FRESH {
            ow.insert(&record(1000 + i, 1)).unwrap();
            if i % 3 == 0 && deleted < DELETED {
                ow.delete(deleted).unwrap();
                deleted += 1;
            }
            if i % 7 == 0 {
                ow.upsert(&record(UPSERTED + (i % (PRELOADED - UPSERTED)), 2)).unwrap();
            }
        }
        oracle.flush().unwrap();

        let got = ds.scan_values().unwrap();
        let expected = oracle.scan_values().unwrap();
        assert_eq!(got.len(), expected.len(), "concurrent run must match the oracle's cardinality");
        assert_eq!(got, expected, "concurrent run must equal the single-threaded oracle");
        // Schema record counts agree too (anti-schemas processed exactly once).
        assert_eq!(
            ds.schema_snapshot().unwrap().record_count(),
            oracle.schema_snapshot().unwrap().record_count()
        );
    });
}

// ---------------------------------------------------------------------
// 2. Parallel feed partitions with background maintenance vs. oracle
// ---------------------------------------------------------------------

#[test]
fn parallel_feed_with_background_flush_matches_oracle() {
    with_watchdog(Duration::from_secs(120), "parallel-feed", || {
        const N: i64 = 1500;
        let topo = ClusterConfig {
            nodes: 2,
            partitions_per_node: 2,
            device: DeviceProfile::RAM,
            cache_budget_per_node: 4 * 1024 * 1024,
        };
        let records: Vec<Value> = (0..N).map(|pk| record(pk, 0)).collect();

        let bg = Cluster::create_dataset(topo.clone(), stress_config(true));
        bg.feed(records.clone(), FeedMode::Insert).unwrap();
        // Upsert half the keys through the feed while maintenance churns.
        let updates: Vec<Value> = (0..N / 2).map(|pk| record(pk * 2, 1)).collect();
        bg.feed(updates.clone(), FeedMode::Upsert).unwrap();
        bg.await_quiescent();
        bg.flush_all().unwrap();

        let sync = Cluster::create_dataset(topo, stress_config(false));
        sync.feed(records, FeedMode::Insert).unwrap();
        sync.feed(updates, FeedMode::Upsert).unwrap();
        sync.flush_all().unwrap();

        for (p_bg, p_sync) in bg.partitions().iter().zip(sync.partitions()) {
            assert_eq!(p_bg.ingested(), p_sync.ingested());
            assert_eq!(
                p_bg.scan_values().unwrap(),
                p_sync.scan_values().unwrap(),
                "each partition must match its synchronous twin"
            );
            assert_eq!(p_bg.lsm_stats().writer_stall_nanos, 0);
        }
        for pk in (0..N).step_by(67) {
            let v = bg.get(pk).unwrap().unwrap();
            assert_untorn(&v);
            let expected_version = if pk % 2 == 0 && pk < N { 1 } else { 0 };
            assert_eq!(v.get_field("version").unwrap().as_i64(), Some(expected_version));
        }
    });
}

// ---------------------------------------------------------------------
// 3. Crash while a background flush is in flight (threaded extension of
//    the lsm-level `flush_crashing_before_validity` coverage)
// ---------------------------------------------------------------------

#[test]
fn crash_during_threaded_flush_replays_unflushed_suffix() {
    with_watchdog(Duration::from_secs(60), "crash-mid-flush", || {
        let ds = Arc::new(make_dataset(false));
        let mut w = ds.writer();
        // C0: a durable component.
        w.insert(&record(1, 0)).unwrap();
        ds.flush().unwrap();
        // These land in the memtable → frozen by the crashing flush.
        w.insert(&record(2, 0)).unwrap();
        w.insert(&record(3, 0)).unwrap();

        // The flush runs on another thread and "crashes" before setting the
        // validity bit; meanwhile the writer keeps appending — its writes go
        // to the rotated (active) WAL segment.
        let flusher = Arc::clone(&ds);
        let crashing = std::thread::spawn(move || {
            flusher.primary().flush_crashing_before_validity();
        });
        crashing.join().unwrap();
        w.insert(&record(4, 0)).unwrap(); // post-freeze write, active WAL only
        drop(w);

        assert_eq!(ds.primary().components().len(), 2, "invalid component is on disk");

        // Process crash: all in-memory state vanishes; recovery drops the
        // invalid component and replays BOTH WAL segments — the frozen one
        // (covering the crashed flush) and the active one (covering the
        // post-freeze write).
        ds.simulate_crash();
        let (removed, replayed) = ds.recover().unwrap();
        assert_eq!(removed, 1, "invalid component discarded");
        assert_eq!(replayed, 3, "exactly the un-flushed suffix: keys 2, 3, 4");
        for pk in 1..=4 {
            let v = ds.get(pk).unwrap().unwrap_or_else(|| panic!("key {pk} lost in recovery"));
            assert_untorn(&v);
        }
        assert_eq!(ds.scan_values().unwrap().len(), 4);

        // Normal operation resumes: the restored memtable flushes as C1.
        ds.flush().unwrap();
        assert_eq!(ds.primary().components().last().unwrap().id().to_string(), "C1");
        assert_eq!(ds.scan_values().unwrap().len(), 4);
    });
}

#[test]
fn crash_after_background_flush_loses_nothing() {
    with_watchdog(Duration::from_secs(60), "crash-after-bg-flush", || {
        // A *completed* background flush must be durable: crash right after
        // quiescing and nothing replays from the WAL except post-flush writes.
        let ds = make_dataset(true);
        let mut w = ds.writer();
        for pk in 0..300 {
            w.insert(&record(pk, 0)).unwrap();
        }
        ds.flush_async().unwrap();
        ds.await_quiescent();
        let flushed_components = ds.primary().components().len();
        assert!(flushed_components >= 1);
        w.insert(&record(9000, 0)).unwrap(); // not flushed
        drop(w);

        ds.simulate_crash();
        let (removed, replayed) = ds.recover().unwrap();
        assert_eq!(removed, 0, "background-flushed components are valid");
        assert!(
            replayed >= 1,
            "the un-flushed suffix (at least key 9000) replays from the active segment"
        );
        assert!(ds.get(9000).unwrap().is_some());
        assert_eq!(ds.scan_values().unwrap().len(), 301);
    });
}

// ---------------------------------------------------------------------
// 4. Concurrent scans vs. merges: snapshots survive component swaps
// ---------------------------------------------------------------------

#[test]
fn scans_stay_consistent_across_concurrent_merges() {
    with_watchdog(Duration::from_secs(60), "scans-vs-merges", || {
        let ds = Arc::new(make_dataset(false));
        const N: i64 = 600;
        let mut w = ds.writer();
        for pk in 0..N {
            w.insert(&record(pk, 0)).unwrap();
            if pk % 100 == 99 {
                ds.flush().unwrap();
            }
        }
        drop(w);
        ds.flush().unwrap();
        assert!(ds.primary().components().len() >= 2, "need components to merge");

        std::thread::scope(|scope| {
            let merger = Arc::clone(&ds);
            scope.spawn(move || {
                for _ in 0..3 {
                    merger.force_full_merge().unwrap();
                }
            });
            for _ in 0..3 {
                let reader = Arc::clone(&ds);
                scope.spawn(move || {
                    for _ in 0..25 {
                        let values = reader.scan_values().unwrap();
                        assert_eq!(values.len(), N as usize, "merge must never drop/double rows");
                        for v in values.iter().step_by(53) {
                            assert_untorn(v);
                        }
                    }
                });
            }
        });
        assert_eq!(ds.primary().components().len(), 1);
        assert_eq!(ds.scan_values().unwrap().len(), N as usize);
    });
}

/// Same shape as above, but the reorganization is policy-driven rather
/// than a manual full merge: leveled and tiered policies issue
/// non-contiguous picks (installed by `Arc` identity at the newest input's
/// slot), and the background worker runs them to fixpoint while readers
/// scan. No policy may drop, double, or tear a row.
#[test]
fn scans_stay_consistent_under_policy_driven_merges() {
    for policy in [
        MergePolicy::Leveled { level0_components: 3, base_bytes: 16 * 1024, fanout: 4 },
        MergePolicy::Tiered { base_bytes: 16 * 1024, size_ratio: 4, min_tier_runs: 3 },
    ] {
        with_watchdog(Duration::from_secs(60), "scans-vs-policy-merges", move || {
            let ds = Arc::new(Dataset::new(
                stress_config(true).with_merge_policy(policy),
                Arc::new(Device::new(DeviceProfile::RAM)),
                Arc::new(BufferCache::new(4096)),
            ));
            const N: i64 = 600;
            std::thread::scope(|scope| {
                let writer = Arc::clone(&ds);
                scope.spawn(move || {
                    // The 8 KiB budget keeps flushes firing, so the worker
                    // re-evaluates the policy throughout the ingest.
                    let mut w = writer.writer();
                    for pk in 0..N {
                        w.insert(&record(pk, 0)).unwrap();
                    }
                });
                for _ in 0..3 {
                    let reader = Arc::clone(&ds);
                    scope.spawn(move || {
                        for _ in 0..25 {
                            for v in reader.scan_values().unwrap().iter().step_by(29) {
                                assert_untorn(v);
                            }
                        }
                    });
                }
            });
            ds.await_quiescent();
            ds.flush().unwrap();
            assert_eq!(ds.scan_values().unwrap().len(), N as usize, "policy dropped rows");
            let stats = ds.lsm_stats();
            assert!(stats.merges > 0, "{} never reorganized under stress", policy.name());
            assert_eq!(stats.components_retired, 0, "merging policies are lossless");
        });
    }
}

// ---------------------------------------------------------------------
// 5. Repeated short runs: shake out interleavings (the suite is also run
//    20× in CI; this in-test loop catches cheap orderings every run)
// ---------------------------------------------------------------------

#[test]
fn repeated_short_stress_rounds() {
    with_watchdog(Duration::from_secs(120), "repeated-rounds", || {
        for round in 0..8 {
            let ds = Arc::new(make_dataset(true));
            let base = round * 10_000;
            std::thread::scope(|scope| {
                let writer = Arc::clone(&ds);
                scope.spawn(move || {
                    let mut w = writer.writer();
                    for i in 0..250 {
                        w.insert(&record(base + i, 0)).unwrap();
                        if i % 5 == 4 {
                            w.delete(base + i - 2).unwrap();
                        }
                    }
                });
                let reader = Arc::clone(&ds);
                scope.spawn(move || {
                    for _ in 0..15 {
                        for v in reader.scan_values().unwrap() {
                            assert_untorn(&v);
                        }
                    }
                });
            });
            ds.await_quiescent();
            ds.flush().unwrap();
            // 250 inserts, 50 deletes.
            assert_eq!(ds.scan_values().unwrap().len(), 200, "round {round}");
        }
    });
}
