//! Fault-injection integration suite: the crash-point sweep harness, the
//! transient fault storm, silent-corruption detection, and crash-mid-merge
//! recovery.
//!
//! The central invariant, checked from every angle here: **an acknowledged
//! write is never lost and a lost write is never acknowledged**. Writes are
//! "acked" when the API returned `Ok`; everything after a crash point fails
//! with a typed [`AdmError::Storage`], never a panic, and after
//! `recover()` the dataset is exactly the oracle built from the acked
//! prefix.

use std::collections::BTreeMap;
use std::sync::Arc;

use asterix_tc::prelude::*;
use tc_storage::FaultPlan;

/// Workload scale knobs, small enough that the sweep (which replays the
/// whole workload once per crash point) stays fast on a RAM device.
const PHASE1: i64 = 50;
const PHASE2: i64 = 80;
const PHASE3: i64 = 100;

fn record(id: i64, v: i64) -> Value {
    parse(&format!(r#"{{"id": {id}, "v": {v}, "tag": "t{}"}}"#, v % 7)).unwrap()
}

fn make_dataset() -> (Dataset, Arc<Device>) {
    make_dataset_with(StorageFormat::Inferred)
}

fn make_dataset_with(format: StorageFormat) -> (Dataset, Arc<Device>) {
    let device = Arc::new(Device::new(DeviceProfile::RAM));
    let cache = Arc::new(BufferCache::new(4096));
    let ds = Dataset::new(
        DatasetConfig::new("Faulty", "id")
            .with_format(format)
            .with_memtable_budget(8 * 1024)
            .with_merge_policy(MergePolicy::NoMerge),
        Arc::clone(&device),
        cache,
    );
    (ds, device)
}

/// The sweep's fixed workload: ingest, flush, updates and deletes, flush,
/// full merge, more ingest, a query, final flush. Every operation updates
/// the oracle only if the dataset acknowledged it; the first storage error
/// is "the crash" and ends the run (`false`). A clean, uninjected run
/// returns `true`.
fn run_workload(ds: &Dataset) -> (BTreeMap<i64, i64>, bool) {
    let mut oracle: BTreeMap<i64, i64> = BTreeMap::new();
    let mut w = ds.writer();
    for i in 0..PHASE1 {
        if w.insert(&record(i, i)).is_err() {
            return (oracle, false);
        }
        oracle.insert(i, i);
    }
    drop(w);
    if ds.flush().is_err() {
        return (oracle, false);
    }
    let mut w = ds.writer();
    for i in PHASE1..PHASE2 {
        if i % 13 == 0 {
            match w.delete(i - PHASE1) {
                Ok(_) => {
                    oracle.remove(&(i - PHASE1));
                }
                Err(_) => return (oracle, false),
            }
        } else if i % 10 == 0 {
            if w.upsert(&record(i - PHASE1, i * 100)).is_err() {
                return (oracle, false);
            }
            oracle.insert(i - PHASE1, i * 100);
        } else {
            if w.insert(&record(i, i)).is_err() {
                return (oracle, false);
            }
            oracle.insert(i, i);
        }
    }
    drop(w);
    if ds.flush().is_err() || ds.force_full_merge().is_err() {
        return (oracle, false);
    }
    let mut w = ds.writer();
    for i in PHASE2..PHASE3 {
        if w.insert(&record(i, i)).is_err() {
            return (oracle, false);
        }
        oracle.insert(i, i);
    }
    drop(w);
    // A query mid-workload: reads consume I/O operations too, so crash
    // points land inside scans. Queries have no side effects; a typed
    // error here does not end the "process", the next write does.
    let _ = ds.scan_values();
    if ds.flush().is_err() {
        return (oracle, false);
    }
    (oracle, true)
}

/// Read back the full dataset as `id -> v`.
fn contents(ds: &Dataset) -> BTreeMap<i64, i64> {
    ds.scan_values()
        .unwrap()
        .into_iter()
        .map(|rec| {
            let id = rec.get_field("id").and_then(Value::as_i64).unwrap();
            let v = rec.get_field("v").and_then(Value::as_i64).unwrap();
            (id, v)
        })
        .collect()
}

/// The tentpole harness: run the workload once uninjected to count its I/O
/// operations, then re-run it crashing at every Kth operation, recover, and
/// require the survivors to equal the acked oracle exactly.
fn sweep_crash_points(format: StorageFormat) {
    // Calibrate: an empty plan injects nothing but counts operations.
    let (ds, device) = make_dataset_with(format);
    device.set_fault_plan(FaultPlan::new(0));
    let (full_oracle, completed) = run_workload(&ds);
    assert!(completed, "uninjected workload must complete");
    let total_ops = device.clear_fault_plan().unwrap().ops_seen();
    assert!(total_ops > 50, "workload too small to sweep ({total_ops} ops)");
    assert_eq!(contents(&ds), full_oracle, "clean run matches its oracle");

    // Sweep roughly 40 crash points across the run, always including the
    // very first operation and one point past the end (= no crash).
    let step = (total_ops / 40).max(1);
    let mut crash_points: Vec<u64> = (1..=total_ops).step_by(step as usize).collect();
    crash_points.push(total_ops + 1);
    for k in crash_points {
        let (ds, device) = make_dataset_with(format);
        device.set_fault_plan(FaultPlan::new(k).with_crash_after_ops(k));
        let (oracle, completed) = run_workload(&ds);
        assert_eq!(
            completed,
            k > total_ops,
            "crash at op {k}/{total_ops}: completion must match the crash point"
        );
        device.clear_fault_plan();
        ds.simulate_crash();
        let (_removed, _replayed) = ds.recover().unwrap_or_else(|e| {
            panic!("recovery after crash at op {k} must succeed: {e}");
        });
        ds.flush().unwrap();
        assert_eq!(
            contents(&ds),
            oracle,
            "crash at op {k}/{total_ops}: recovered dataset != acked oracle"
        );
    }
}

#[test]
fn crash_point_sweep_recovers_every_acked_write() {
    sweep_crash_points(StorageFormat::Inferred);
}

/// The same sweep over the AMAX columnar format: crash points land inside
/// the column-shredding flush and merge writers (keys/column/residual pages
/// and the column index blob), and recovery must behave identically.
#[test]
fn crash_point_sweep_recovers_every_acked_write_columnar() {
    sweep_crash_points(StorageFormat::Columnar);
}

// ---------------------------------------------------------------------
// Cluster crash-point sweep, parameterized over the merge-policy matrix
// ---------------------------------------------------------------------

/// A cluster record. The secondary key `s` is a pure function of the
/// primary key, so updates rewrite `v` but never move the record in the
/// secondary index — a torn upsert can only *lose* a posting (completeness
/// gap for its one key), never leave a wrong-valued one behind.
fn cluster_record(id: i64, v: i64) -> Value {
    parse(&format!(r#"{{"id": {id}, "v": {v}, "s": {}}}"#, id * 10)).unwrap()
}

/// 1 node × 2 partitions on RAM devices, with WAL, a primary-key index,
/// and a secondary index — three LSM trees per partition, all governed by
/// the merge policy under test. Synchronous maintenance: budget-triggered
/// flushes run the policy inline, so crash points land inside
/// policy-chosen merges too.
fn make_cluster(policy: MergePolicy) -> Cluster {
    Cluster::create_dataset(
        ClusterConfig {
            nodes: 1,
            partitions_per_node: 2,
            device: DeviceProfile::RAM,
            ..Default::default()
        },
        DatasetConfig::new("Faulty", "id")
            .with_format(StorageFormat::Inferred)
            .with_memtable_budget(8 * 1024)
            .with_merge_policy(policy)
            .with_primary_key_index(true)
            .with_secondary_index("s"),
    )
}

/// The cluster sweep workload: hash-partitioned ingest, flushes, updates
/// and deletes, a full merge, more ingest, a secondary-range read, final
/// flush. Returns the acked oracle, whether the run completed, and the key
/// of the one op torn by the crash (`None` on structural-op failures).
fn run_cluster_workload(c: &Cluster) -> (BTreeMap<i64, i64>, bool, Option<i64>) {
    let mut oracle: BTreeMap<i64, i64> = BTreeMap::new();
    for i in 0..PHASE1 {
        if c.insert(&cluster_record(i, i)).is_err() {
            return (oracle, false, Some(i));
        }
        oracle.insert(i, i);
    }
    if c.flush_all().is_err() {
        return (oracle, false, None);
    }
    for i in PHASE1..PHASE2 {
        if i % 13 == 0 {
            match c.delete(i - PHASE1) {
                Ok(_) => {
                    oracle.remove(&(i - PHASE1));
                }
                Err(_) => return (oracle, false, Some(i - PHASE1)),
            }
        } else if i % 10 == 0 {
            if c.upsert(&cluster_record(i - PHASE1, i * 100)).is_err() {
                return (oracle, false, Some(i - PHASE1));
            }
            oracle.insert(i - PHASE1, i * 100);
        } else {
            if c.insert(&cluster_record(i, i)).is_err() {
                return (oracle, false, Some(i));
            }
            oracle.insert(i, i);
        }
    }
    if c.flush_all().is_err() || c.merge_all().is_err() {
        return (oracle, false, None);
    }
    for i in PHASE2..PHASE3 {
        if c.insert(&cluster_record(i, i)).is_err() {
            return (oracle, false, Some(i));
        }
        oracle.insert(i, i);
    }
    // Secondary-access-path read mid-workload: consumes I/O like any scan,
    // has no side effects; the next write decides whether we crashed.
    for p in c.partitions() {
        let _ = p.secondary_range(0, i64::MAX);
    }
    // Sentinel writes covering every partition: each device performs at
    // least one op AFTER the ignored reads, so a crash landing inside them
    // still surfaces as a visible error before the run can "complete".
    let mut covered = vec![false; c.num_partitions()];
    let mut id = PHASE3;
    while covered.iter().any(|done| !done) {
        let p = c.partition_of(id);
        if !covered[p] {
            covered[p] = true;
            if c.insert(&cluster_record(id, id)).is_err() {
                return (oracle, false, Some(id));
            }
            oracle.insert(id, id);
        }
        id += 1;
    }
    if c.flush_all().is_err() {
        return (oracle, false, None);
    }
    (oracle, true, None)
}

/// Union of all partitions' primary contents as `id -> v`.
fn cluster_contents(c: &Cluster) -> BTreeMap<i64, i64> {
    let mut all = BTreeMap::new();
    for p in c.partitions() {
        all.extend(contents(p));
    }
    all
}

/// Satellite sweep for the policy matrix: for every registry merge policy,
/// crash the whole cluster (every partition device arms the same plan) at
/// ~8 points across the run, recover all partitions, and require:
/// primary contents == acked oracle exactly; every secondary posting sound
/// (equal to the oracle); secondary completeness up to the single torn key.
#[test]
fn crash_point_sweep_cluster_covers_every_policy() {
    for policy in MergePolicy::matrix() {
        // Calibrate per policy: merge I/O differs, so op counts do too.
        let c = make_cluster(policy);
        for node in c.nodes() {
            for d in &node.devices {
                d.set_fault_plan(FaultPlan::new(0));
            }
        }
        let (full_oracle, completed, _) = run_cluster_workload(&c);
        assert!(completed, "[{}] uninjected workload must complete", policy.name());
        let total_ops = c
            .nodes()
            .iter()
            .flat_map(|n| &n.devices)
            .map(|d| d.clear_fault_plan().unwrap().ops_seen())
            .max()
            .unwrap();
        assert!(total_ops > 50, "[{}] workload too small ({total_ops} ops)", policy.name());
        assert_eq!(cluster_contents(&c), full_oracle, "[{}] clean run", policy.name());

        let step = (total_ops / 8).max(1);
        let mut crash_points: Vec<u64> = (1..=total_ops).step_by(step as usize).collect();
        crash_points.push(total_ops + 1);
        for k in crash_points {
            let c = make_cluster(policy);
            for node in c.nodes() {
                for d in &node.devices {
                    d.set_fault_plan(FaultPlan::new(k).with_crash_after_ops(k));
                }
            }
            let (oracle, completed, torn_key) = run_cluster_workload(&c);
            // Op k itself still succeeds (the plan fails ops numbered > k),
            // so the run completes exactly when k covers the whole op count.
            assert_eq!(
                completed,
                k >= total_ops,
                "[{}] crash at op {k}/{total_ops}: completion must match",
                policy.name()
            );
            for node in c.nodes() {
                for d in &node.devices {
                    d.clear_fault_plan();
                }
            }
            c.simulate_crash_all();
            let (_removed, _replayed) = c.recover_all().unwrap_or_else(|e| {
                panic!("[{}] recovery after crash at op {k} must succeed: {e}", policy.name());
            });
            c.flush_all().unwrap();
            assert_eq!(
                cluster_contents(&c),
                oracle,
                "[{}] crash at op {k}/{total_ops}: recovered cluster != acked oracle",
                policy.name()
            );
            // Secondary access path after recovery. Soundness: every record
            // served via the secondary index matches the oracle (dangling
            // postings from a torn op can't materialize — the primary
            // lookup misses). Completeness: at most the torn op's own key
            // may have lost its posting.
            let mut via_secondary = BTreeMap::new();
            for p in c.partitions() {
                for rec in p.secondary_range(0, i64::MAX).unwrap() {
                    let id = rec.get_field("id").and_then(Value::as_i64).unwrap();
                    let v = rec.get_field("v").and_then(Value::as_i64).unwrap();
                    assert_eq!(
                        oracle.get(&id),
                        Some(&v),
                        "[{}] crash at op {k}: secondary served a wrong record",
                        policy.name()
                    );
                    via_secondary.insert(id, v);
                }
            }
            let missing: Vec<i64> =
                oracle.keys().filter(|id| !via_secondary.contains_key(id)).copied().collect();
            assert!(
                missing.is_empty() || missing == vec![torn_key.unwrap_or(i64::MIN)],
                "[{}] crash at op {k}: secondary lost postings for {missing:?} (torn: {torn_key:?})",
                policy.name()
            );
        }
    }
}

/// Fault storm: 1% of all device operations fail transiently. Bounded
/// per-write retries must land every acked write; nothing panics; the
/// storm is visible in the stats counters. `TC_FAULT_SEED` reseeds the
/// storm (the CI `faults` job loops this test over many seeds).
#[test]
fn fault_storm_loses_no_acked_writes() {
    let seed: u64 =
        std::env::var("TC_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xF0F0);
    let (ds, device) = make_dataset();
    device.set_fault_plan(FaultPlan::new(seed).with_transient_rate_permille(10));

    let mut oracle: BTreeMap<i64, i64> = BTreeMap::new();
    let mut w = ds.writer();
    for i in 0..400i64 {
        let mut attempts = 0;
        loop {
            match w.insert(&record(i, i)) {
                Ok(()) => {
                    oracle.insert(i, i);
                    break;
                }
                Err(e) if e.is_transient() && attempts < 12 => attempts += 1,
                Err(e) if e.is_transient() => break, // dropped, never acked
                Err(e) => panic!("storm injects only transients, got: {e}"),
            }
        }
    }
    drop(w);
    // Maintenance under the storm: keep asking until a round survives.
    let mut flushed = false;
    for _ in 0..50 {
        if ds.flush().is_ok() {
            flushed = true;
            break;
        }
    }
    assert!(flushed, "a 1% storm cannot starve flushes for 50 rounds");
    device.clear_fault_plan();
    ds.flush().unwrap();

    assert!(device.faults_injected() > 0, "the storm must actually storm");
    assert_eq!(contents(&ds), oracle, "an acked write was lost to the storm");
    assert_eq!(oracle.len(), 400, "1% transients with 12 retries drop nothing");
}

/// Silent corruption sweep: flip one bit in each of the first N component
/// writes (one fresh dataset per position). Every read must return either
/// the exact correct data or a typed corruption error — flipped bits are
/// never decoded into wrong rows, and at least one flip must be caught by
/// a checksum.
#[test]
fn bit_flips_are_always_detected_never_decoded() {
    let expected: BTreeMap<i64, i64> = (0..60).map(|i| (i, i)).collect();
    let mut detections = 0u64;
    for n in 1..=8u64 {
        let (ds, device) = make_dataset();
        let mut w = ds.writer();
        for i in 0..60i64 {
            w.insert(&record(i, i)).unwrap();
        }
        drop(w);
        // Armed right before the flush, so write #n is component data (a
        // page, the footer, or the length-and-offset file) — not the WAL.
        device.set_fault_plan(FaultPlan::new(n).flip_bit_in_nth_write(n));
        ds.flush().unwrap();
        let fired = device.faults_injected() > 0;
        device.clear_fault_plan();
        if !fired {
            continue; // flush used fewer than n writes
        }
        match ds.scan_values() {
            Ok(rows) => {
                let got: BTreeMap<i64, i64> = rows
                    .into_iter()
                    .map(|r| {
                        (
                            r.get_field("id").and_then(Value::as_i64).unwrap(),
                            r.get_field("v").and_then(Value::as_i64).unwrap(),
                        )
                    })
                    .collect();
                assert_eq!(got, expected, "flip in write {n} decoded into wrong rows");
            }
            Err(AdmError::Storage { transient, .. }) => {
                assert!(!transient, "corruption is permanent");
                assert!(
                    ds.lsm_stats().checksum_failures > 0,
                    "typed corruption error without a checksum failure"
                );
                detections += 1;
                // The degraded-read path: a permissive scan skips the
                // quarantined component instead of failing.
                use tc_query::exec::{execute, CorruptionPolicy, ExecOptions};
                use tc_query::{AccessStrategy, Query, ScanSpec};
                let q = Query {
                    scan: ScanSpec::all_early(
                        vec![tc_adm::path::parse_path("id")],
                        AccessStrategy::Consolidated,
                    ),
                    ops: vec![],
                };
                let opts = ExecOptions::with_corruption_policy(CorruptionPolicy::Degrade);
                let res = execute(&[&ds], &q, &opts).unwrap();
                assert!(res.stats.quarantined_components >= 1);
                assert!(res.rows.len() < 60, "quarantined rows must not be served");
            }
            Err(e) => panic!("flip in write {n}: unexpected error class: {e}"),
        }
    }
    assert!(detections > 0, "no flip in the sweep was ever detected");
}

/// Bit flips inside a resting columnar component: the zero-pivot batched
/// scan must never serve wrong rows. Each flipped write either lands in
/// pages the query never faults (exact correct answer), or the checksum
/// failure quarantines the component and the scan degrades through the
/// generic path's corruption policy — fewer rows, accounted for, no panic.
#[test]
fn columnar_bit_flip_quarantines_and_degrades_batched_scan() {
    use tc_query::exec::{execute, CorruptionPolicy, Engine, ExecOptions};
    use tc_query::{AccessStrategy, CmpOp, Expr, Query, ScanSpec};

    // id >= 0 runs the typed filter loop over the id column; `v` and `tag`
    // come out of other columns (or the residual), so different flip
    // positions corrupt different parts of the read set.
    let q = Query {
        scan: ScanSpec {
            paths: vec![tc_adm::path::parse_path("id")],
            filter: Some(Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::lit(0i64))),
            late_paths: vec![tc_adm::path::parse_path("v"), tc_adm::path::parse_path("tag")],
            access: AccessStrategy::Consolidated,
        },
        ops: vec![],
    };
    let mut degradations = 0u64;
    for n in 1..=10u64 {
        let (ds, device) = make_dataset_with(StorageFormat::Columnar);
        let mut w = ds.writer();
        for i in 0..60i64 {
            w.insert(&record(i, i)).unwrap();
        }
        drop(w);
        // Armed right before the flush: write #n is columnar component data
        // (a keys/column/residual page, the index blob, or the footer).
        device.set_fault_plan(FaultPlan::new(n).flip_bit_in_nth_write(n));
        ds.flush().unwrap();
        let fired = device.faults_injected() > 0;
        device.clear_fault_plan();
        if !fired {
            continue;
        }
        assert!(ds.snapshot_columnar().is_some(), "partition must be at rest");

        let opts = ExecOptions {
            corruption_policy: CorruptionPolicy::Degrade,
            ..ExecOptions::with_engine(Engine::Batched)
        };
        let res = execute(&[&ds], &q, &opts).unwrap();
        if res.rows.len() == 60 {
            // The flip landed outside the query's read set; every served
            // row must still be exact.
            for (i, row) in res.rows.iter().enumerate() {
                assert_eq!(row[0], Value::Int64(i as i64), "flip {n}: wrong id served");
                assert_eq!(row[1], Value::Int64(i as i64), "flip {n}: wrong v served");
            }
        } else {
            assert!(
                res.stats.quarantined_components >= 1,
                "flip {n}: partial answer without a quarantine"
            );
            degradations += 1;
        }
    }
    assert!(degradations > 0, "no flip in the sweep ever degraded the columnar batched scan");
}

/// A WAL tail torn mid-append (the crash landed a prefix of the record):
/// replay must stop at the torn record, losing only the unacked write.
#[test]
fn torn_wal_tail_truncates_to_last_acked_write() {
    let (ds, device) = make_dataset();
    let mut w = ds.writer();
    for i in 0..30i64 {
        w.insert(&record(i, i)).unwrap();
    }
    device.set_fault_plan(FaultPlan::new(5).tear_nth_write(1));
    let torn = w.insert(&record(99, 99));
    assert!(torn.is_err(), "a torn append must not be acknowledged");
    drop(w);
    device.clear_fault_plan();

    ds.simulate_crash();
    let (_, replayed) = ds.recover().unwrap();
    assert_eq!(replayed, 30, "replay stops exactly at the torn record");
    ds.flush().unwrap();
    let got = contents(&ds);
    assert_eq!(got.len(), 30);
    assert!(!got.contains_key(&99), "the torn write must stay lost");
}

/// Crash between merge-write and install: the merged component is on disk
/// without its validity bit and the inputs were never spliced out.
/// Recovery drops the half-merged component and serves from the inputs.
#[test]
fn crash_mid_merge_keeps_inputs_drops_half_merged() {
    let (ds, _device) = make_dataset();
    for lo in [0i64, 40] {
        let mut w = ds.writer();
        for i in lo..lo + 40 {
            w.insert(&record(i, i)).unwrap();
        }
        drop(w);
        ds.flush().unwrap();
    }
    assert_eq!(ds.primary().components().len(), 2);

    ds.primary().force_full_merge_crashing_before_validity().unwrap();
    assert_eq!(ds.primary().components().len(), 3, "half-merged component on disk");

    ds.simulate_crash();
    let (removed, replayed) = ds.recover().unwrap();
    assert_eq!(removed, 1, "exactly the invalid merged component is dropped");
    assert_eq!(replayed, 0, "both inputs were durably flushed");
    assert_eq!(ds.primary().components().len(), 2, "inputs survive recovery");

    let expected: BTreeMap<i64, i64> = (0..80).map(|i| (i, i)).collect();
    assert_eq!(contents(&ds), expected);

    // And the re-run merge completes normally on the survivors.
    ds.force_full_merge().unwrap();
    assert_eq!(ds.primary().components().len(), 1);
    assert_eq!(contents(&ds), expected);
}
