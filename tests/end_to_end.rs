//! Cross-crate integration tests: the full paper pipeline, end to end.

use std::sync::Arc;

use asterix_tc::prelude::*;
use tc_datagen::{
    sensors::SensorsGen, twitter::TwitterGen, updates::Updater, wos::WosGen, Generator,
};
use tc_query::paper_queries as q;

fn make_dataset(format: StorageFormat, compression: CompressionScheme) -> Dataset {
    let config = DatasetConfig::new("ds", "id")
        .with_format(format)
        .with_compression(compression)
        .with_memtable_budget(128 * 1024)
        .with_primary_key_index(true);
    let device = Arc::new(Device::new(DeviceProfile::NVME_SSD));
    let cache = Arc::new(BufferCache::new(8192));
    Dataset::new(config, device, cache)
}

/// Ingest → flush → merge → crash → recover → query, with page compression
/// on, for every storage format.
#[test]
fn ingest_crash_recover_query_all_formats() {
    for format in [StorageFormat::Open, StorageFormat::Inferred, StorageFormat::VectorUncompacted] {
        let ds = make_dataset(format, CompressionScheme::Snappy);
        let mut gen = TwitterGen::new(11);
        let records: Vec<Value> = (0..400).map(|_| gen.next_record()).collect();
        let mut w = ds.writer();
        for r in &records[..300] {
            w.insert(r).unwrap();
        }
        ds.flush().unwrap();
        ds.force_full_merge().unwrap();
        // Unflushed tail + a delete + an upsert, then crash.
        for r in &records[300..] {
            w.insert(r).unwrap();
        }
        w.delete(5).unwrap();
        let mut upd = records[6].clone();
        if let Value::Object(fields) = &mut upd {
            fields.push(("patched".to_string(), Value::Boolean(true)));
        }
        w.upsert(&upd).unwrap();
        drop(w);
        ds.simulate_crash();
        let (_, replayed) = ds.recover().unwrap();
        assert!(replayed > 0, "{format:?}: WAL replay expected");
        ds.flush().unwrap();

        assert_eq!(ds.get(5).unwrap(), None, "{format:?}: delete survived crash");
        let got = ds.get(6).unwrap().unwrap();
        assert_eq!(
            got.get_field("patched"),
            Some(&Value::Boolean(true)),
            "{format:?}: upsert survived crash"
        );
        assert_eq!(ds.scan_values().unwrap().len(), 399, "{format:?}");
    }
}

/// The twelve paper queries return byte-identical results regardless of
/// storage format, compression, optimizer configuration, and parallelism.
#[test]
fn paper_queries_are_format_invariant() {
    let day_start = 1_556_496_000_000i64;
    type QSet = Vec<Vec<Vec<Value>>>;
    let mut reference: Option<QSet> = None;
    for format in [StorageFormat::Open, StorageFormat::Inferred] {
        for compression in [CompressionScheme::None, CompressionScheme::Snappy] {
            let tw = make_dataset(format, compression);
            let wos = make_dataset(format, compression);
            let sen = make_dataset(format, compression);
            let mut g1 = TwitterGen::new(21);
            let mut g2 = WosGen::new(22);
            let mut g3 = SensorsGen::new(23);
            {
                let (mut tw_w, mut wos_w, mut sen_w) = (tw.writer(), wos.writer(), sen.writer());
                for _ in 0..200 {
                    tw_w.insert(&g1.next_record()).unwrap();
                    wos_w.insert(&g2.next_record()).unwrap();
                }
                for _ in 0..50 {
                    sen_w.insert(&g3.next_record()).unwrap();
                }
            }
            for ds in [&tw, &wos, &sen] {
                ds.flush().unwrap();
            }
            for opts in [QueryOptions::default(), QueryOptions::unoptimized()] {
                for (parallel, engine) in [
                    (false, Engine::Batched),
                    (true, Engine::Batched),
                    (false, Engine::Row),
                    (true, Engine::Row),
                ] {
                    let exec = ExecOptions { parallel, engine, ..Default::default() };
                    let run = |ds: &Dataset, query: &Query| {
                        tc_query::exec::execute(&[ds], query, &exec).unwrap().rows
                    };
                    let results: QSet = vec![
                        run(&tw, &q::twitter_q1(opts)),
                        run(&tw, &q::twitter_q2(opts)),
                        run(&tw, &q::twitter_q3(opts)),
                        run(&wos, &q::wos_q1(opts)),
                        run(&wos, &q::wos_q2(opts)),
                        run(&wos, &q::wos_q3(opts)),
                        run(&wos, &q::wos_q4(opts)),
                        run(&sen, &q::sensors_q1(opts)),
                        run(&sen, &q::sensors_q2(opts)),
                        run(&sen, &q::sensors_q3(opts)),
                        run(&sen, &q::sensors_q4(opts, day_start)),
                    ];
                    match &reference {
                        None => reference = Some(results),
                        Some(r) => assert_eq!(
                            *r, results,
                            "{format:?}/{compression:?}/{opts:?}/parallel={parallel}/{engine:?}"
                        ),
                    }
                }
            }
        }
    }
}

/// Heavy update churn: schema counters stay consistent with reality.
#[test]
fn update_churn_keeps_schema_consistent() {
    let ds = make_dataset(StorageFormat::Inferred, CompressionScheme::None);
    let mut gen = TwitterGen::new(31);
    let originals: Vec<Value> = (0..200).map(|_| gen.next_record()).collect();
    let mut w = ds.writer();
    for r in &originals {
        w.insert(r).unwrap();
    }
    ds.flush().unwrap();
    let mut up = Updater::new(32);
    for _ in 0..400 {
        let k = up.pick_key(200) as usize;
        let current = ds.get(k as i64).unwrap().unwrap();
        let (mutated, _) = up.mutate(&current, "id");
        w.upsert(&mutated).unwrap();
    }
    ds.flush().unwrap();
    ds.force_full_merge().unwrap();
    // Record count is unchanged; every record still decodes; the schema's
    // root counter equals the live record count.
    let values = ds.scan_values().unwrap();
    assert_eq!(values.len(), 200);
    let schema = ds.schema_snapshot().unwrap();
    assert_eq!(schema.record_count(), 200);
    // Delete everything: the schema shrinks back to (almost) nothing.
    for i in 0..200 {
        w.delete(i).unwrap();
    }
    ds.flush().unwrap();
    assert_eq!(ds.scan_values().unwrap().len(), 0);
    let schema = ds.schema_snapshot().unwrap();
    assert_eq!(schema.record_count(), 0);
    assert_eq!(schema.num_live_nodes(), 1, "only the root survives");
}

/// Partitioned cluster: heterogeneous partition schemas + broadcast still
/// produce correct global answers.
#[test]
fn heterogeneous_partitions_query_correctly() {
    let cluster = Cluster::create_dataset(
        ClusterConfig {
            nodes: 2,
            partitions_per_node: 2,
            device: DeviceProfile::NVME_SSD,
            cache_budget_per_node: 8 * 1024 * 1024,
        },
        DatasetConfig::new("emps", "id").with_format(StorageFormat::Inferred),
    );
    // Partition-dependent structure: age is an int for even ids, a string
    // for odd ids; salary only exists for ids divisible by 3 (the Fig 15
    // heterogeneity scenario).
    for i in 0..400i64 {
        let age =
            if i % 2 == 0 { format!("{}", 20 + i % 40) } else { format!("\"{}y\"", 20 + i % 40) };
        let salary =
            if i % 3 == 0 { format!(", \"salary\": {}", 50_000 + i) } else { String::new() };
        let r = parse(&format!(r#"{{"id": {i}, "name": "e{}", "age": {age}{salary}}}"#, i % 7))
            .unwrap();
        cluster.insert(&r).unwrap();
    }
    cluster.flush_all().unwrap();
    // GROUP BY name over heterogeneous partitions.
    let query = Query {
        scan: tc_query::plan::ScanSpec::all_early(
            vec![tc_adm::path::parse_path("name")],
            tc_query::plan::AccessStrategy::Consolidated,
        ),
        ops: vec![
            tc_query::plan::Op::GroupBy {
                keys: vec![tc_query::expr::Expr::col(0)],
                aggs: vec![tc_query::agg::Agg::count_star()],
            },
            tc_query::plan::Op::OrderBy {
                keys: vec![(tc_query::expr::Expr::col(0), false)],
                limit: None,
            },
        ],
    };
    let res = cluster.query(&query, &ExecOptions::default()).unwrap();
    assert_eq!(res.rows.len(), 7);
    let total: i64 = res.rows.iter().map(|r| r[1].as_i64().unwrap()).sum();
    assert_eq!(total, 400);
    assert!(res.stats.broadcast_bytes > 0);
}

/// The full paper pipeline — partitioned ingest, schema inference, crash,
/// recovery, global query — is merge-policy independent: a leveled and a
/// lazy-leveled cluster answer exactly like the prefix default, while
/// their trees actually reorganized (merges fired, component counts
/// bounded).
#[test]
fn query_answers_are_merge_policy_independent() {
    let make = |policy| {
        let cluster = Cluster::create_dataset(
            ClusterConfig {
                nodes: 1,
                partitions_per_node: 2,
                device: DeviceProfile::NVME_SSD,
                cache_budget_per_node: 8 * 1024 * 1024,
            },
            DatasetConfig::new("emps", "id")
                .with_format(StorageFormat::Inferred)
                .with_memtable_budget(8 * 1024)
                .with_merge_policy(policy),
        );
        for i in 0..300i64 {
            let r =
                parse(&format!(r#"{{"id": {i}, "name": "e{}", "score": {i}}}"#, i % 7)).unwrap();
            cluster.insert(&r).unwrap();
        }
        cluster.flush_all().unwrap();
        cluster.simulate_crash_all();
        cluster.recover_all().unwrap();
        cluster
    };
    let query = Query {
        scan: tc_query::plan::ScanSpec::all_early(
            vec![tc_adm::path::parse_path("name")],
            tc_query::plan::AccessStrategy::Consolidated,
        ),
        ops: vec![
            tc_query::plan::Op::GroupBy {
                keys: vec![tc_query::expr::Expr::col(0)],
                aggs: vec![tc_query::agg::Agg::count_star()],
            },
            tc_query::plan::Op::OrderBy {
                keys: vec![(tc_query::expr::Expr::col(0), false)],
                limit: None,
            },
        ],
    };
    let reference = make(MergePolicy::paper_default(64 * 1024 * 1024));
    let expected = reference.query(&query, &ExecOptions::default()).unwrap().rows;
    for policy in [
        MergePolicy::Leveled { level0_components: 3, base_bytes: 16 * 1024, fanout: 4 },
        MergePolicy::LazyLeveled { tier_runs: 3, base_bytes: 16 * 1024, fanout: 4 },
    ] {
        let cluster = make(policy);
        let rows = cluster.query(&query, &ExecOptions::default()).unwrap().rows;
        assert_eq!(rows, expected, "{} changed query answers", policy.name());
        let stats = cluster.lsm_stats();
        assert!(
            stats.iter().any(|s| s.merges > 0),
            "{} never reorganized during ingest",
            policy.name()
        );
        for p in cluster.partitions() {
            assert!(
                p.primary().components().len() <= 8,
                "{} left an unbounded tree",
                policy.name()
            );
        }
    }
}

/// Bulk load equals feed ingestion, observably.
#[test]
fn bulk_load_matches_feed() {
    let mut gen = WosGen::new(44);
    let records: Vec<Value> = (0..150).map(|_| gen.next_record()).collect();
    let fed = make_dataset(StorageFormat::Inferred, CompressionScheme::None);
    let mut fed_w = fed.writer();
    for r in &records {
        fed_w.insert(r).unwrap();
    }
    fed.flush().unwrap();
    let loaded = make_dataset(StorageFormat::Inferred, CompressionScheme::None);
    loaded.writer().bulk_load(records.clone()).unwrap();
    let a = fed.scan_values().unwrap();
    let b = loaded.scan_values().unwrap();
    assert_eq!(a, b);
    assert_eq!(loaded.primary().components().len(), 1);
}
