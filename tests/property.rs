//! Property-based tests over the core invariants (proptest).

use proptest::prelude::*;
use std::sync::Arc;

use asterix_tc::prelude::*;
use tc_adm::path::eval_path;
use tc_schema::Schema;

// ---------------------------------------------------------------------
// Value generator: arbitrary ADM trees (bounded depth/size)
// ---------------------------------------------------------------------

fn arb_scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Boolean),
        any::<i8>().prop_map(Value::Int8),
        any::<i16>().prop_map(Value::Int16),
        any::<i32>().prop_map(Value::Int32),
        any::<i64>().prop_map(Value::Int64),
        any::<f32>().prop_map(Value::Float),
        any::<f64>().prop_map(Value::Double),
        "[a-zA-Z0-9 _#@!]{0,24}".prop_map(Value::String),
        proptest::collection::vec(any::<u8>(), 0..16).prop_map(Value::Binary),
        (-50_000i32..50_000).prop_map(Value::Date),
        (0i32..86_400_000).prop_map(Value::Time),
        // Text roundtrip is defined for datetimes whose civil conversion
        // fits i64 milliseconds (±~100k years); binary formats take any i64.
        (-4_000_000_000_000_000i64..4_000_000_000_000_000).prop_map(Value::DateTime),
        any::<i64>().prop_map(Value::Duration),
        any::<[u8; 16]>().prop_map(Value::Uuid),
        (any::<f64>(), any::<f64>()).prop_map(|(x, y)| Value::Point(x, y)),
    ]
}

fn arb_value() -> impl Strategy<Value = Value> {
    arb_scalar().prop_recursive(3, 48, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Multiset),
            arb_object_from(inner),
        ]
    })
}

fn arb_object_from(inner: impl Strategy<Value = Value> + 'static) -> impl Strategy<Value = Value> {
    proptest::collection::btree_map("[a-z]{1,8}", inner, 0..6)
        .prop_map(|m| Value::Object(m.into_iter().collect()))
}

/// A top-level record: an object with an integer `id` plus arbitrary fields.
fn arb_record() -> impl Strategy<Value = Value> {
    (0i64..1_000_000, arb_object_from(arb_value())).prop_map(|(id, obj)| {
        let Value::Object(mut fields) = obj else { unreachable!() };
        fields.retain(|(n, _)| n != "id");
        fields.insert(0, ("id".to_string(), Value::Int64(id)));
        Value::Object(fields)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Text printer/parser roundtrip.
    #[test]
    fn adm_text_roundtrip(v in arb_value()) {
        let text = asterix_tc::adm::to_string(&v);
        let back = parse(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    /// The baseline ADM physical format roundtrips.
    #[test]
    fn adm_format_roundtrip(v in arb_record()) {
        let bytes = asterix_tc::adm::adm_format::encode_record(&v, None).unwrap();
        let back = asterix_tc::adm::adm_format::decode_record(&bytes, None).unwrap();
        prop_assert_eq!(back, v);
    }

    /// The vector-based format roundtrips (uncompacted).
    #[test]
    fn vector_format_roundtrip(v in arb_record()) {
        let bytes = asterix_tc::vector::encode(&v, None);
        let back = asterix_tc::vector::decode(&bytes, None, None).unwrap();
        prop_assert_eq!(back, v);
    }

    /// infer_and_compact preserves the value exactly (decoded through the
    /// schema dictionary) and never grows the record.
    #[test]
    fn compaction_preserves_value(records in proptest::collection::vec(arb_record(), 1..6)) {
        let mut schema = Schema::new();
        for v in &records {
            let raw = asterix_tc::vector::encode(v, None);
            let compacted =
                asterix_tc::vector::infer_and_compact(&raw, &mut schema).unwrap();
            prop_assert!(compacted.len() <= raw.len());
            let back =
                asterix_tc::vector::decode(&compacted, None, Some(schema.dict())).unwrap();
            prop_assert_eq!(&back, v);
        }
    }

    /// Observing then removing the same records restores the empty schema
    /// (anti-schema correctness).
    #[test]
    fn schema_observe_remove_cancels(records in proptest::collection::vec(arb_record(), 1..8)) {
        let mut schema = Schema::new();
        let skip = |name: &str| name == "id";
        for v in &records {
            let Value::Object(fields) = v else { unreachable!() };
            schema.observe_record(fields, &skip);
        }
        for v in &records {
            let Value::Object(fields) = v else { unreachable!() };
            schema.remove_record(fields, &skip);
        }
        prop_assert_eq!(schema.record_count(), 0);
        prop_assert_eq!(schema.num_live_nodes(), 1);
    }

    /// Schema inference is monotone: after more records, the schema covers
    /// the earlier one.
    #[test]
    fn schema_growth_is_monotone(records in proptest::collection::vec(arb_record(), 2..6)) {
        let mut schema = Schema::new();
        let skip = |name: &str| name == "id";
        let mut prev = schema.clone();
        for v in &records {
            let Value::Object(fields) = v else { unreachable!() };
            schema.observe_record(fields, &skip);
            prop_assert!(schema.is_superset_of(&prev));
            prev = schema.clone();
        }
        // Serialization roundtrip preserves coverage both ways.
        let back = Schema::deserialize(&schema.serialize()).unwrap();
        prop_assert!(back.is_superset_of(&schema) && schema.is_superset_of(&back));
    }

    /// Snappy roundtrips arbitrary byte strings.
    #[test]
    fn snappy_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let compressed = asterix_tc::compress::snappy::compress(&data);
        let back = asterix_tc::compress::snappy::decompress(&compressed).unwrap();
        prop_assert_eq!(back, data);
    }

    /// getValues over vector records matches eval_path over the decoded
    /// value for arbitrary records and field paths.
    #[test]
    fn get_values_matches_eval_path(v in arb_record(), name in "[a-z]{1,8}") {
        let paths = vec![
            tc_adm::path::parse_path(&name),
            tc_adm::path::parse_path("id"),
        ];
        let raw = asterix_tc::vector::encode(&v, None);
        let got = asterix_tc::vector::get_values(&raw, &paths, None, None).unwrap();
        let expected: Vec<Value> = paths.iter().map(|p| eval_path(&v, p)).collect();
        prop_assert_eq!(got, expected);
    }
}

// ---------------------------------------------------------------------
// LSM model check: the tree behaves like a BTreeMap under arbitrary
// interleavings of insert / delete / upsert / flush / merge / crash+recover
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum LsmOp {
    Insert(u8, u16),
    Delete(u8),
    Upsert(u8, u16),
    Flush,
    Merge,
    CrashRecover,
}

fn arb_op() -> impl Strategy<Value = LsmOp> {
    prop_oneof![
        4 => (any::<u8>(), any::<u16>()).prop_map(|(k, v)| LsmOp::Insert(k, v)),
        2 => any::<u8>().prop_map(LsmOp::Delete),
        2 => (any::<u8>(), any::<u16>()).prop_map(|(k, v)| LsmOp::Upsert(k, v)),
        1 => Just(LsmOp::Flush),
        1 => Just(LsmOp::Merge),
        1 => Just(LsmOp::CrashRecover),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Background-flush execution is observationally identical to the
    /// synchronous one: for any op sequence with explicit flush points, a
    /// dataset whose flushes run on the maintenance worker (awaited at each
    /// flush point so the component boundaries line up) produces the same
    /// `scan_values()`, the same component count/stats invariants, and the
    /// same schema record count as a dataset flushing inline — while a
    /// third dataset that only quiesces at the END (letting flush jobs
    /// coalesce freely against the writer) still yields identical data.
    #[test]
    fn background_flush_equals_synchronous(ops in proptest::collection::vec(arb_op(), 1..60)) {
        fn make(background: bool) -> Dataset {
            // Large budget: only the explicit flush points flush, so both
            // executions see identical component boundaries.
            let config = DatasetConfig::new("model", "id")
                .with_format(StorageFormat::Inferred)
                .with_memtable_budget(64 * 1024 * 1024)
                .with_merge_policy(MergePolicy::NoMerge)
                .with_background_maintenance(background);
            let device = Arc::new(Device::new(DeviceProfile::RAM));
            let cache = Arc::new(BufferCache::new(1024));
            Dataset::new(config, device, cache)
        }
        let sync = make(false);
        let awaited = make(true);
        let coalesced = make(true);
        let (mut sync_w, mut awaited_w, mut coalesced_w) =
            (sync.writer(), awaited.writer(), coalesced.writer());

        for op in &ops {
            match op {
                LsmOp::Insert(k, v) | LsmOp::Upsert(k, v) => {
                    let record = parse(&format!(r#"{{"id": {k}, "v": {v}}}"#)).unwrap();
                    sync_w.upsert(&record).unwrap();
                    awaited_w.upsert(&record).unwrap();
                    coalesced_w.upsert(&record).unwrap();
                }
                LsmOp::Delete(k) => {
                    let a = sync_w.delete(*k as i64).unwrap();
                    let b = awaited_w.delete(*k as i64).unwrap();
                    let c = coalesced_w.delete(*k as i64).unwrap();
                    prop_assert_eq!(a, b);
                    prop_assert_eq!(a, c);
                }
                LsmOp::Flush | LsmOp::Merge | LsmOp::CrashRecover => {
                    // All three structural ops act as flush points here
                    // (merge/crash need their own determinism and are
                    // covered by dataset_matches_model below).
                    sync.flush().unwrap();
                    awaited.flush_async().unwrap();
                    awaited.await_quiescent();
                    coalesced.flush_async().unwrap(); // NOT awaited: jobs coalesce
                }
            }
        }
        sync.flush().unwrap();
        awaited.flush_async().unwrap();
        awaited.await_quiescent();
        coalesced.await_quiescent();
        coalesced.flush().unwrap();

        // Lock-step execution: identical data AND identical lifecycle.
        prop_assert_eq!(awaited.scan_values().unwrap(), sync.scan_values().unwrap());
        let (s, a) = (sync.lsm_stats(), awaited.lsm_stats());
        prop_assert_eq!(a.flushes, s.flushes, "same flush points ⇒ same flush count");
        prop_assert_eq!(a.entries_flushed, s.entries_flushed);
        prop_assert_eq!(
            awaited.primary().components().len(),
            sync.primary().components().len()
        );
        prop_assert_eq!(
            awaited.schema_snapshot().unwrap().record_count(),
            sync.schema_snapshot().unwrap().record_count()
        );
        prop_assert_eq!(a.writer_stall_nanos, 0, "background writer never stalls");

        // Coalesced execution: component boundaries may differ, but the
        // observable data and schema accounting must not.
        // (No claim on coalesced entries_flushed vs sync: a worker freeze
        // landing mid-window splits windows as legally as it merges them.)
        prop_assert_eq!(coalesced.scan_values().unwrap(), sync.scan_values().unwrap());
        prop_assert_eq!(
            coalesced.schema_snapshot().unwrap().record_count(),
            sync.schema_snapshot().unwrap().record_count()
        );
    }

    #[test]
    fn dataset_matches_model(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let config = DatasetConfig::new("model", "id")
            .with_format(StorageFormat::Inferred)
            .with_memtable_budget(8 * 1024)
            .with_merge_policy(MergePolicy::NoMerge);
        let device = Arc::new(Device::new(DeviceProfile::NVME_SSD));
        let cache = Arc::new(BufferCache::new(1024));
        let ds = Dataset::new(config, device, cache);
        let mut writer = ds.writer();
        let mut model: std::collections::BTreeMap<i64, u16> = Default::default();

        for op in ops {
            match op {
                LsmOp::Insert(k, v) | LsmOp::Upsert(k, v) => {
                    let record = parse(&format!(r#"{{"id": {k}, "v": {v}}}"#)).unwrap();
                    writer.upsert(&record).unwrap();
                    model.insert(k as i64, v);
                }
                LsmOp::Delete(k) => {
                    let existed = writer.delete(k as i64).unwrap();
                    let model_existed = model.remove(&(k as i64)).is_some();
                    prop_assert_eq!(existed, model_existed);
                }
                LsmOp::Flush => ds.flush().unwrap(),
                LsmOp::Merge => {
                    ds.flush().unwrap();
                    ds.force_full_merge().unwrap();
                }
                LsmOp::CrashRecover => {
                    // Crash is only lossless if everything is WAL-covered —
                    // which it is (WAL enabled by default).
                    ds.simulate_crash();
                    ds.recover().unwrap();
                }
            }
        }
        // Full scan equals the model.
        let got: Vec<(i64, i64)> = ds
            .scan_values()
            .unwrap()
            .into_iter()
            .map(|r| {
                (
                    r.get_field("id").unwrap().as_i64().unwrap(),
                    r.get_field("v").unwrap().as_i64().unwrap(),
                )
            })
            .collect();
        let expected: Vec<(i64, i64)> =
            model.iter().map(|(k, v)| (*k, *v as i64)).collect();
        prop_assert_eq!(got, expected);
        // Spot point lookups, including absent keys.
        for k in [0i64, 17, 255] {
            prop_assert_eq!(ds.get(k).unwrap().is_some(), model.contains_key(&k));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The AMAX columnar format is observationally equivalent to the vector
    /// formats: arbitrary nested records (every scalar type, NaN doubles,
    /// type-mixed fields that spill, arrays, deep objects), ingested under
    /// {Inferred, VectorUncompacted, Columnar} × {sync, background}, then
    /// flushed and fully merged, produce identical scans, point lookups,
    /// and batched query rows — including the columnar zero-pivot scan
    /// whenever the resting partition lets it fire.
    #[test]
    fn columnar_format_is_observationally_equivalent(
        records in proptest::collection::vec(arb_record(), 1..10),
        delete_mask in proptest::collection::vec(any::<bool>(), 10),
    ) {
        use tc_query::exec::{execute, Engine, ExecOptions};
        use tc_query::{AccessStrategy, CmpOp, Expr, Query, ScanSpec};

        fn run(
            format: StorageFormat,
            background: bool,
            records: &[Value],
            delete_mask: &[bool],
        ) -> Dataset {
            let config = DatasetConfig::new("equiv", "id")
                .with_format(format)
                .with_memtable_budget(8 * 1024) // frequent flushes
                .with_merge_policy(MergePolicy::NoMerge)
                .with_background_maintenance(background);
            let device = Arc::new(Device::new(DeviceProfile::RAM));
            let cache = Arc::new(BufferCache::new(1024));
            let ds = Dataset::new(config, device, cache);
            let mut w = ds.writer();
            for r in records {
                w.upsert(r).unwrap();
            }
            for (r, delete) in records.iter().zip(delete_mask) {
                if *delete {
                    let id = r.get_field("id").and_then(Value::as_i64).unwrap();
                    w.delete(id).unwrap();
                }
            }
            drop(w);
            ds.await_quiescent();
            ds.flush().unwrap();
            // Converge to the resting single-component state — for
            // Columnar, the state the zero-pivot scan serves from.
            ds.force_full_merge().unwrap();
            ds
        }

        // Probe a field that actually occurs in the data, so the query's
        // second output column exercises typed columns / residuals / spills
        // depending on what the records contain.
        let probe = records
            .iter()
            .find_map(|v| {
                let Value::Object(fields) = v else { return None };
                fields.iter().map(|(n, _)| n.clone()).find(|n| n != "id")
            })
            .unwrap_or_else(|| "absent".to_string());
        let query = Query {
            scan: ScanSpec {
                paths: vec![
                    tc_adm::path::parse_path("id"),
                    tc_adm::path::parse_path(&probe),
                ],
                filter: Some(Expr::cmp(
                    CmpOp::Ge,
                    Expr::col(0),
                    Expr::lit(500_000i64),
                )),
                late_paths: vec![],
                access: AccessStrategy::Consolidated,
            },
            ops: vec![],
        };

        let reference = run(StorageFormat::Inferred, false, &records, &delete_mask);
        let expected_scan = reference.scan_values().unwrap();
        let expected_rows = execute(
            &[&reference],
            &query,
            &ExecOptions::with_engine(Engine::Row),
        )
        .unwrap()
        .rows;

        let formats = [
            StorageFormat::Inferred,
            StorageFormat::VectorUncompacted,
            StorageFormat::Columnar,
        ];
        for format in formats {
            for background in [false, true] {
                let ds = run(format, background, &records, &delete_mask);
                prop_assert_eq!(
                    &ds.scan_values().unwrap(),
                    &expected_scan,
                    "{:?} (background={}) scan diverged",
                    format,
                    background
                );
                for engine in [Engine::Batched, Engine::Row] {
                    let got = execute(
                        &[&ds],
                        &query,
                        &ExecOptions::with_engine(engine),
                    )
                    .unwrap()
                    .rows;
                    prop_assert_eq!(
                        &got,
                        &expected_rows,
                        "{:?} (background={}, {:?}) query diverged",
                        format,
                        background,
                        engine
                    );
                }
                for r in &records {
                    let id = r.get_field("id").and_then(Value::as_i64).unwrap();
                    prop_assert_eq!(
                        ds.get(id).unwrap(),
                        reference.get(id).unwrap(),
                        "{:?} (background={}) point get diverged",
                        format,
                        background
                    );
                }
            }
        }
    }
}

proptest! {
    // Each case runs the workload 1 + |matrix| × 2 times, so a modest case
    // count still exercises every policy against hundreds of workloads.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Merge policies are pure reorganization: for any random workload of
    /// inserts / upserts / deletes with explicit flush points, every policy
    /// in the registry matrix — run both synchronously and on the
    /// background maintenance worker — produces exactly the same
    /// `scan_values()` and schema record count as a no-merge reference.
    /// After a final full merge, every variant collapses to one component
    /// with zero anti-matter (deletes are fully garbage-collected), so
    /// anti-matter semantics are policy-independent too.
    #[test]
    fn merge_policies_are_observationally_equivalent(
        ops in proptest::collection::vec(arb_op(), 1..30)
    ) {
        fn run(policy: MergePolicy, background: bool, ops: &[LsmOp]) -> Dataset {
            // Tiny budget: flushes fire often, so the policies under test
            // actually get multi-component lists to reorganize.
            let config = DatasetConfig::new("equiv", "id")
                .with_format(StorageFormat::Inferred)
                .with_memtable_budget(8 * 1024)
                .with_merge_policy(policy)
                .with_background_maintenance(background);
            let device = Arc::new(Device::new(DeviceProfile::RAM));
            let cache = Arc::new(BufferCache::new(1024));
            let ds = Dataset::new(config, device, cache);
            let mut writer = ds.writer();
            for op in ops {
                match op {
                    LsmOp::Insert(k, v) | LsmOp::Upsert(k, v) => {
                        let record =
                            parse(&format!(r#"{{"id": {k}, "v": {v}}}"#)).unwrap();
                        writer.upsert(&record).unwrap();
                    }
                    LsmOp::Delete(k) => {
                        writer.delete(*k as i64).unwrap();
                    }
                    LsmOp::Flush | LsmOp::Merge | LsmOp::CrashRecover => {
                        // Structural ops degrade to flush points: merging is
                        // exactly what varies across the matrix, and
                        // crash/recovery under policies is covered by the
                        // fault sweep in tests/faults.rs.
                        if background {
                            ds.flush_async().unwrap();
                        } else {
                            ds.flush().unwrap();
                        }
                    }
                }
            }
            drop(writer);
            ds.await_quiescent();
            ds.flush().unwrap();
            ds
        }

        let reference = run(MergePolicy::NoMerge, false, &ops);
        let expected = reference.scan_values().unwrap();
        let expected_records =
            reference.schema_snapshot().unwrap().record_count();

        for policy in MergePolicy::matrix() {
            for background in [false, true] {
                let ds = run(policy, background, &ops);
                prop_assert_eq!(
                    &ds.scan_values().unwrap(),
                    &expected,
                    "policy {} (background={}) diverged",
                    policy.name(),
                    background
                );
                prop_assert_eq!(
                    ds.schema_snapshot().unwrap().record_count(),
                    expected_records,
                    "policy {} (background={}) schema record count diverged",
                    policy.name(),
                    background
                );
                prop_assert_eq!(
                    ds.lsm_stats().components_retired,
                    0,
                    "matrix policies must be lossless"
                );
                // Anti-matter semantics: a full merge converges to a single
                // component with every delete resolved. (With fewer than two
                // components the merge is a no-op, and a lone flushed
                // component may legitimately carry tombstones.)
                let before = ds.primary().components().len();
                ds.force_full_merge().unwrap();
                let comps = ds.primary().components();
                let live: u64 =
                    comps.iter().map(|c| c.num_entries() - c.num_antimatter()).sum();
                prop_assert_eq!(
                    live as usize,
                    expected.len(),
                    "live-entry accounting diverged under {}",
                    policy.name()
                );
                if before >= 2 {
                    prop_assert_eq!(comps.len(), 1);
                    prop_assert_eq!(
                        comps[0].num_antimatter(),
                        0,
                        "full merge under {} left anti-matter",
                        policy.name()
                    );
                }
            }
        }
    }
}
