//! Property test: the batched scan engine and the row-at-a-time engine are
//! observationally identical — same rows, same order, same scan counters —
//! across random data, random plan shapes, random partitioning, and random
//! batch sizes (including sizes that split partitions mid-batch). Serial
//! and parallel execution are held to the same standard.

use proptest::prelude::*;
use std::sync::Arc;

use asterix_tc::prelude::*;
use tc_query::agg::{Agg, AggFn};
use tc_query::exec::{execute, ExecOptions};
use tc_query::{AccessStrategy, CmpOp, Expr, Op, Query, ScanSpec};

/// One generated record; `id` is assigned sequentially at insert time so
/// primary keys never collide.
#[derive(Debug, Clone)]
struct Rec {
    a: Option<Value>,
    b: Option<String>,
    c: Vec<i64>,
    e: Option<i64>,
}

impl Rec {
    fn to_value(&self, id: i64) -> Value {
        let mut fields = vec![("id".to_string(), Value::Int64(id))];
        if let Some(a) = &self.a {
            fields.push(("a".to_string(), a.clone()));
        }
        if let Some(b) = &self.b {
            fields.push(("b".to_string(), Value::string(b.as_str())));
        }
        fields.push((
            "c".to_string(),
            Value::Array(self.c.iter().map(|&v| Value::Int64(v)).collect()),
        ));
        if let Some(e) = self.e {
            fields.push(("d".to_string(), Value::Object(vec![("e".to_string(), Value::Int64(e))])));
        }
        Value::Object(fields)
    }
}

/// `proptest::option::of` replacement for the vendored shim.
fn opt<S>(s: S) -> BoxedStrategy<Option<S::Value>>
where
    S: Strategy + 'static,
    S::Value: Clone + 'static,
{
    prop_oneof![Just(None), s.prop_map(Some)].boxed()
}

fn arb_rec() -> impl Strategy<Value = Rec> {
    (
        opt(prop_oneof![
            (0i64..25).prop_map(Value::Int64),
            "[a-c]{1,3}".prop_map(Value::String),
            Just(Value::Null),
        ]),
        opt("[rgb]"),
        proptest::collection::vec(0i64..10, 0..4),
        opt(0i64..5),
    )
        .prop_map(|(a, b, c, e)| Rec { a, b, c, e })
}

/// Parameterized plan templates covering the batched engine's code paths:
/// typed and generic scan-filter conjuncts, lazy early columns, late paths,
/// per-path access, projections with LIMIT, computed DISTINCT, order-by,
/// two-phase group-by, and unnest.
#[derive(Debug, Clone)]
enum Shape {
    FilterTyped { lt: i64, late: bool, per_path: bool },
    FilterGeneric { needle: String, typed_too: Option<i64> },
    ProjectLimit { k: usize },
    DistinctExpr,
    OrderBy { desc: bool, limit: Option<usize> },
    GroupBy,
    Unnest,
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    prop_oneof![
        (0i64..30, any::<bool>(), any::<bool>())
            .prop_map(|(lt, late, per_path)| Shape::FilterTyped { lt, late, per_path }),
        ("[rgb]", opt(0i64..25))
            .prop_map(|(needle, typed_too)| Shape::FilterGeneric { needle, typed_too }),
        (0usize..40).prop_map(|k| Shape::ProjectLimit { k }),
        Just(Shape::DistinctExpr),
        (any::<bool>(), opt(1usize..10)).prop_map(|(desc, limit)| Shape::OrderBy { desc, limit }),
        Just(Shape::GroupBy),
        Just(Shape::Unnest),
    ]
}

fn build_query(shape: &Shape) -> Query {
    let path = tc_adm::path::parse_path;
    match shape {
        Shape::FilterTyped { lt, late, per_path } => Query {
            scan: ScanSpec {
                paths: vec![path("id"), path("a")],
                filter: Some(Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(*lt))),
                late_paths: if *late { vec![path("b")] } else { vec![] },
                access: if *per_path {
                    AccessStrategy::PerPath
                } else {
                    AccessStrategy::Consolidated
                },
            },
            ops: vec![],
        },
        Shape::FilterGeneric { needle, typed_too } => {
            let eq_b = Expr::eq(Expr::col(0), Expr::lit(needle.as_str()));
            let filter = match typed_too {
                // Mixed conjuncts: one generic (string eq), one typed (i64),
                // exercising both refinement paths on the same batch.
                Some(lt) => Expr::and(eq_b, Expr::cmp(CmpOp::Lt, Expr::col(1), Expr::lit(*lt))),
                None => eq_b,
            };
            Query {
                scan: ScanSpec {
                    paths: vec![path("b"), path("a"), path("id")],
                    filter: Some(filter),
                    late_paths: vec![],
                    access: AccessStrategy::Consolidated,
                },
                ops: vec![],
            }
        }
        Shape::ProjectLimit { k } => Query {
            scan: ScanSpec::all_early(vec![path("id"), path("a")], AccessStrategy::Consolidated),
            ops: vec![Op::Project(vec![Expr::col(1), Expr::col(0)]), Op::Limit(*k)],
        },
        Shape::DistinctExpr => Query {
            scan: ScanSpec::all_early(vec![path("d")], AccessStrategy::Consolidated),
            ops: vec![
                Op::Distinct(vec![Expr::path(0, "e")]),
                Op::OrderBy { keys: vec![(Expr::col(0), false)], limit: None },
            ],
        },
        Shape::OrderBy { desc, limit } => Query {
            scan: ScanSpec::all_early(vec![path("id"), path("b")], AccessStrategy::Consolidated),
            ops: vec![Op::OrderBy { keys: vec![(Expr::col(0), *desc)], limit: *limit }],
        },
        Shape::GroupBy => Query {
            scan: ScanSpec::all_early(vec![path("b"), path("a")], AccessStrategy::Consolidated),
            ops: vec![
                Op::GroupBy {
                    keys: vec![Expr::col(0)],
                    aggs: vec![Agg::count_star(), Agg::of(AggFn::Sum, Expr::col(1))],
                },
                Op::OrderBy { keys: vec![(Expr::col(0), false)], limit: None },
            ],
        },
        Shape::Unnest => Query {
            scan: ScanSpec::all_early(vec![path("c")], AccessStrategy::Consolidated),
            ops: vec![
                Op::Unnest(Expr::col(0)),
                Op::GroupBy { keys: vec![Expr::col(1)], aggs: vec![Agg::count_star()] },
                Op::OrderBy { keys: vec![(Expr::col(0), false)], limit: None },
            ],
        },
    }
}

fn load(recs: &[Rec], partitions: usize, format: StorageFormat) -> Vec<Dataset> {
    let cache = Arc::new(BufferCache::new(4096));
    let out: Vec<Dataset> = (0..partitions)
        .map(|_| {
            Dataset::new(
                DatasetConfig::new("P", "id")
                    .with_format(format)
                    .with_memtable_budget(16 * 1024)
                    .with_merge_policy(tc_lsm::MergePolicy::NoMerge),
                Arc::new(Device::new(DeviceProfile::RAM)),
                Arc::clone(&cache),
            )
        })
        .collect();
    for (i, rec) in recs.iter().enumerate() {
        out[i % partitions].writer().insert(&rec.to_value(i as i64)).unwrap();
    }
    for ds in &out {
        ds.flush().unwrap();
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_row_serial_parallel_all_agree(
        recs in proptest::collection::vec(arb_rec(), 0..80),
        partitions in 1usize..4,
        shape in arb_shape(),
        batch_size in 1usize..64,
        inferred in any::<bool>(),
    ) {
        let format = if inferred { StorageFormat::Inferred } else { StorageFormat::Open };
        let ds = load(&recs, partitions, format);
        let refs: Vec<&Dataset> = ds.iter().collect();
        let q = build_query(&shape);

        let reference = execute(&refs, &q, &ExecOptions {
            engine: Engine::Row,
            parallel: false,
            ..Default::default()
        }).unwrap();
        for engine in [Engine::Batched, Engine::Row] {
            for parallel in [false, true] {
                let opts = ExecOptions { engine, parallel, batch_size, ..Default::default() };
                let got = execute(&refs, &q, &opts).unwrap();
                prop_assert_eq!(&reference.rows, &got.rows,
                    "{:?}/parallel={} on {:?} (batch={})", engine, parallel, shape, batch_size);
                prop_assert_eq!(reference.stats.rows_scanned, got.stats.rows_scanned,
                    "scan counters: {:?}/parallel={} on {:?}", engine, parallel, shape);
            }
        }
    }
}
