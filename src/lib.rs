//! # asterix-tc — an LSM-based tuple compaction framework
//!
//! A from-scratch Rust reproduction of *"An LSM-based Tuple Compaction
//! Framework for Apache AsterixDB"* (PVLDB 13(9), 2020): schema inference
//! and record compaction piggybacked on LSM flush operations, so a
//! schema-less document store gets closed-schema storage economy without
//! giving up schema flexibility.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use asterix_tc::prelude::*;
//!
//! // A dataset declaring only its key — `{"tuple-compactor-enabled": true}`.
//! let config = DatasetConfig::new("Employee", "id")
//!     .with_format(StorageFormat::Inferred);
//! let device = Arc::new(Device::new(DeviceProfile::NVME_SSD));
//! let cache = Arc::new(BufferCache::new(1024));
//! let employees = Dataset::new(config, device, cache);
//!
//! // Writes go through the partition's exclusive WriterToken.
//! let mut writer = employees.writer();
//! writer.insert(&parse(r#"{"id": 0, "name": "Kim", "age": 26}"#)?)?;
//! writer.insert(&parse(r#"{"id": 1, "name": "John", "age": 22}"#)?)?;
//! drop(writer);
//! employees.flush(); // the tuple compactor infers + compacts here
//!
//! let schema = employees.schema_snapshot().unwrap();
//! assert!(schema.lookup_field(schema.root(), "name").is_some());
//! assert_eq!(employees.get(0)?.unwrap().get_field("name").unwrap().as_str(),
//!            Some("Kim"));
//! # Ok::<(), asterix_tc::prelude::AdmError>(())
//! ```
//!
//! ## Crate map
//!
//! | Crate | What it provides |
//! |---|---|
//! | [`adm`] | value model, text syntax, declared types, baseline ADM format |
//! | [`schema`] | the counted schema tree + dictionary (§3.2) |
//! | [`vector`] | the vector-based record format (§3.3) |
//! | [`lsm`] | LSM engine: flush/merge lifecycle, WAL, recovery, indexes |
//! | [`core`] | the tuple compactor + `Dataset` API (§3.1) |
//! | [`query`] | expressions, plans, partitioned execution (§3.4) |
//! | [`cluster`] | node/partition topology, feeds, scale-out |
//! | [`datagen`] | Twitter / WoS / Sensors workload generators |
//! | [`formats`] | Avro/Thrift/Protobuf comparators (Table 2) |
//! | [`storage`] | pages, buffer cache, LAF compression, simulated devices |
//! | [`compress`] | the Snappy block codec |

pub use tc_adm as adm;
pub use tc_cluster as cluster;
pub use tc_columnar as columnar;
pub use tc_compress as compress;
pub use tc_datagen as datagen;
pub use tc_formats as formats;
pub use tc_lsm as lsm;
pub use tc_query as query;
pub use tc_schema as schema;
pub use tc_storage as storage;
pub use tc_util as util;
pub use tc_vector as vector;
pub use tuple_compactor as core;

/// Everything a typical user needs.
pub mod prelude {
    pub use tc_adm::{parse, to_string, AdmError, ObjectType, TypeKind, TypeTag, Value};
    pub use tc_cluster::{Cluster, ClusterConfig, FeedMode};
    pub use tc_compress::CompressionScheme;
    pub use tc_lsm::{CompactionDecision, CompactionPolicy, LsmStats, MergePolicy, RunMeta};
    pub use tc_query::exec::{execute, Engine, ExecOptions};
    pub use tc_query::plan::{Query, QueryOptions};
    pub use tc_storage::device::{Device, DeviceProfile};
    pub use tc_storage::BufferCache;
    pub use tuple_compactor::{Dataset, DatasetConfig, StorageFormat, TupleCompactor, WriterToken};
}
